// Deterministic sim-time request tracing (spans).
//
// The simulator's figures are end-of-run scalars; this subsystem records
// *when and where* individual requests spend their time — the paper's §5
// bottleneck story (disk -> NIC/router as memory grows) made visible per
// request. Three rules keep observability from perturbing the simulation:
//
//  1. Zero wall clock. Every timestamp is sim::Engine::now(); the tracer
//     never reads a real clock (see the wall-clock lint rule).
//  2. Passive. The tracer never schedules events, touches the RNG, or
//     changes a callback's scheduling structure. With tracing disabled every
//     hook is a null check, so figure CSVs are byte-identical to baseline.
//  3. Deterministic sampling. Requests are sampled by request id
//     (id % sample_every == 0) — never by RNG or time — so the same config
//     and trace produce byte-identical trace output at any --threads.
//
// Span model: each sampled request owns a tree of SpanRecords (span 0 is the
// request root). Phases open/close at sim times via copyable SpanCtx handles
// that CPS callbacks capture by value. Completed requests live in a bounded
// ring (oldest evicted first). See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace coop::obs {

/// The hardware lane a span (or timeline sample) is charged to. kPhase marks
/// pure protocol phases that span multiple resources (e.g. a remote fetch).
enum class Resource : std::uint8_t {
  kCpu = 0,
  kBus,
  kNicTx,
  kNicRx,
  kDisk,
  kRouter,
  kCache,
  kPhase,
};

[[nodiscard]] const char* to_string(Resource r);

/// Number of distinct Resource values (for lane-indexed tables).
inline constexpr std::size_t kResourceCount = 8;

inline constexpr std::uint32_t kNoSpan = 0xFFFFFFFFu;

/// One phase of a sampled request. `end < begin` means still open (the
/// request committed before an async tail span closed — not expected with
/// unbounded queues, but the exporter tolerates it).
struct SpanRecord {
  std::uint32_t parent = kNoSpan;  // index into the owning request's spans
  const char* op = "";             // static phase name ("cpu.parse", ...)
  std::string detail;              // small free-form annotation, often empty
  std::uint16_t node = 0;          // node the phase runs on
  Resource resource = Resource::kPhase;
  std::uint32_t track = 0;  // render lane: 0 = serial chain, >0 = parallel
  sim::SimTime begin = 0.0;
  sim::SimTime end = -1.0;
  /// Known service demand (ms) when the span wraps one ServiceCenter submit;
  /// duration - demand is then the queueing delay. 0 when unknown.
  sim::SimTime demand = 0.0;
  std::uint64_t bytes = 0;
};

/// One sampled request: identity plus its span tree (spans[0] is the root).
struct RequestTrace {
  std::uint64_t id = 0;        // request index in the trace stream
  std::uint32_t file = 0;      // trace::FileId
  std::uint16_t landing = 0;   // node the dispatcher chose
  std::uint32_t client = 0;    // closed-loop client that issued it
  std::uint32_t tracks = 1;    // parallel tracks allocated (render hint)
  std::vector<SpanRecord> spans;

  [[nodiscard]] sim::SimTime begin() const {
    return spans.empty() ? 0.0 : spans.front().begin;
  }
  [[nodiscard]] sim::SimTime end() const {
    return spans.empty() ? 0.0 : spans.front().end;
  }
};

class Tracer;

/// Copyable, 16-byte handle to one open span. CPS lambdas capture it by
/// value; every operation is a no-op on an inactive handle (tracing off or
/// request not sampled), so instrumentation sites need no branching.
class SpanCtx {
 public:
  SpanCtx() = default;

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Opens a child span at the current sim time, on the same render track.
  [[nodiscard]] SpanCtx begin(const char* op, Resource resource,
                              std::uint16_t node, sim::SimTime demand = 0.0,
                              std::uint64_t bytes = 0) const;

  /// Opens a child span on a fresh parallel track (for phases that overlap
  /// their siblings: per-provider fetch groups, async master forwards).
  [[nodiscard]] SpanCtx branch(const char* op, Resource resource,
                               std::uint16_t node,
                               std::uint64_t bytes = 0) const;

  /// Closes this span at the current sim time.
  void end() const;

  /// Attaches/overwrites the free-form annotation of this span.
  void note(std::string detail) const;

 private:
  friend class Tracer;
  SpanCtx(Tracer* tracer, std::uint64_t request, std::uint32_t span)
      : tracer_(tracer), request_(request), span_(span) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t request_ = 0;
  std::uint32_t span_ = kNoSpan;
};

struct TracerConfig {
  /// Sample request ids congruent to 0 modulo this (1 = every request).
  std::uint64_t sample_every = 1;
  /// Completed requests retained; the oldest is evicted beyond this.
  std::size_t ring_capacity = 512;
};

/// Records sampled request span trees against one Engine's clock.
///
/// A request is *active* from begin_request until its root span ends AND all
/// child spans have closed (async master forwards outlive the response);
/// only then does it move to the completed ring. Commit order is therefore
/// sim-time order — deterministic for a deterministic simulation.
class Tracer {
 public:
  Tracer(sim::Engine& engine, const TracerConfig& config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts the root span of request `id`; inactive handle when unsampled.
  [[nodiscard]] SpanCtx begin_request(std::uint64_t id, std::uint32_t file,
                                      std::uint16_t landing,
                                      std::uint32_t client);

  [[nodiscard]] const TracerConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t started() const { return started_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] std::size_t in_flight() const { return active_.size(); }

  /// Completed ring, oldest first.
  [[nodiscard]] const std::deque<RequestTrace>& completed() const {
    return done_;
  }

  /// Moves the completed ring out (oldest first). In-flight requests are
  /// abandoned; call only after the simulation has drained.
  [[nodiscard]] std::vector<RequestTrace> take_completed();

  /// Writes a human-readable dump of every in-flight request whose landing
  /// node or any open span touches `node` (the CCM_AUDIT integration: an
  /// invariant trip prints what the offending node was doing).
  void dump_in_flight(std::ostream& os, std::uint16_t node) const;

  /// Unfiltered variant: every in-flight request, by ascending request id.
  void dump_in_flight(std::ostream& os) const;

 private:
  friend class SpanCtx;

  struct Active {
    RequestTrace req;
    std::uint32_t open = 0;  // spans begun and not yet ended (incl. root)
  };

  [[nodiscard]] SpanCtx open_child(std::uint64_t request, std::uint32_t parent,
                                   const char* op, Resource resource,
                                   std::uint16_t node, sim::SimTime demand,
                                   std::uint64_t bytes, bool new_track);
  void close_span(std::uint64_t request, std::uint32_t span);
  void set_note(std::uint64_t request, std::uint32_t span, std::string detail);
  void commit(std::uint64_t request);

  sim::Engine& engine_;
  TracerConfig config_;
  // Ordered map: in-flight dumps and eviction sweeps iterate by request id,
  // keeping every output deterministic.
  std::map<std::uint64_t, Active> active_;
  std::deque<RequestTrace> done_;
  std::uint64_t started_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace coop::obs
