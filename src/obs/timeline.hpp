// Per-node, per-resource time-bucketed counters (the "how did utilization
// evolve" half of the observability layer; spans are the "where did this
// request go" half).
//
// A Timeline owns one lane per (node, Resource). Each lane is a vector of
// fixed-width buckets accumulating busy milliseconds, peak queue depth,
// cache hits/misses, and bytes moved. Feeds are push-based and passive:
// BusyTracker interval sinks and ServiceCenter queue probes call in during
// the simulation; nothing here schedules events or reads wall clock, and
// bucket arithmetic is in deterministic sim-event order.
//
// The warm-up boundary calls rebase(now): buckets restart at the measurement
// window's origin so the flushed CSV covers the same window as the figures.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

namespace coop::obs {

/// Node index used for cluster-level lanes (the router sits in the switch,
/// not on a node).
inline constexpr std::uint16_t kClusterNode = 0xFFFF;

struct TimelineBucket {
  double busy_ms = 0.0;
  std::uint64_t max_queue = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] bool empty() const {
    return busy_ms == 0.0 && max_queue == 0 && hits == 0 && misses == 0 &&
           bytes == 0;
  }
};

class Timeline {
 public:
  Timeline() = default;
  /// `nodes` real nodes plus one cluster lane set; `bucket_ms` > 0.
  Timeline(std::size_t nodes, double bucket_ms);

  [[nodiscard]] double bucket_ms() const { return bucket_ms_; }
  [[nodiscard]] sim::SimTime origin() const { return origin_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }

  /// Credits a busy interval [begin, end) to a lane, split across buckets.
  void add_busy(std::uint16_t node, Resource r, sim::SimTime begin,
                sim::SimTime end);

  /// Records an instantaneous queue depth (bucket keeps the maximum).
  void note_queue_depth(std::uint16_t node, Resource r, sim::SimTime now,
                        std::size_t depth);

  /// Adds transferred bytes to the bucket containing `now`.
  void add_bytes(std::uint16_t node, Resource r, sim::SimTime now,
                 std::uint64_t bytes);

  /// Adds cache hit/miss counts to the node's kCache lane at `now`.
  void add_cache_access(std::uint16_t node, sim::SimTime now,
                        std::uint64_t hits, std::uint64_t misses);

  /// Warm-up boundary: discards all buckets and restarts at `origin`.
  void rebase(sim::SimTime origin);

  /// Appends the tidy per-bucket rows (header set when `csv` is empty):
  /// bucket_start_ms,node,resource,busy_ms,max_queue,hits,misses,bytes.
  /// Empty buckets are skipped; rows are ordered bucket, node, resource.
  void append_csv(util::CsvWriter& csv) const;

  /// Lane accessor for the exporter (empty vector when lane unused).
  [[nodiscard]] const std::vector<TimelineBucket>& lane(std::uint16_t node,
                                                        Resource r) const;

 private:
  [[nodiscard]] std::size_t lane_index(std::uint16_t node, Resource r) const;
  TimelineBucket& bucket_at(std::uint16_t node, Resource r, sim::SimTime t);

  std::size_t nodes_ = 0;
  double bucket_ms_ = 100.0;
  sim::SimTime origin_ = 0.0;
  std::vector<std::vector<TimelineBucket>> lanes_;
};

}  // namespace coop::obs
