// Runtime (wall-clock) metrics for the live cluster: relaxed-atomic sharded
// counters and fixed-bucket log2 latency histograms.
//
// This is the deliberately tolerant gcache `CacheStat` idiom: the record path
// takes no locks and orders nothing — every slot is a relaxed atomic, sharded
// by thread so concurrent recorders do not ping-pong a cache line. A snapshot
// taken while traffic is in flight may therefore be mid-update-inconsistent
// (a histogram's `count` can momentarily disagree with its bucket sum by the
// records in flight); that is the accepted price of a hot path that costs two
// relaxed increments. Relaxed atomics (not plain fields) keep the idiom
// TSan-clean without buying any ordering.
//
// Everything here is *runtime-only* observability: the deterministic sim-time
// paths (src/sim, src/obs/trace.hpp) never touch this file. Wall-clock reads
// are confined to this module (runtime_now_ns / runtime_wall_ns) so the
// ccm-lint wall-clock rule stays scoped to src/obs.
//
// Layering: no dependency on src/proto — RPC histograms are indexed by the
// raw message-kind byte (callers pass proto::MsgKind casts and a name
// function for reporting), so coop_obs stays below coop_net in the graph.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace coop::util {
class JsonWriter;
}

namespace coop::obs {

/// Monotonic nanoseconds (steady clock) — durations and histograms.
std::uint64_t runtime_now_ns();

/// Epoch nanoseconds (system clock) — cross-process trace timestamps.
std::uint64_t runtime_wall_ns();

/// log2 histogram geometry: bucket 0 holds the value 0, bucket b >= 1 holds
/// [2^(b-1), 2^b); 64 value bits -> 65 buckets covers every std::uint64_t.
inline constexpr std::size_t kHistBuckets = 65;

/// Slots reserved for per-message-kind RPC metrics. Must stay >= the wire
/// protocol's kind count (static_assert'd where the two layers meet,
/// net/transport.cpp).
inline constexpr std::size_t kMaxRpcKinds = 48;

/// Bucket index of a recorded value.
std::size_t hist_bucket(std::uint64_t value);

/// Inclusive lower bound of a bucket.
std::uint64_t hist_bucket_floor(std::size_t bucket);

/// Named runtime counters the middleware increments on its hot paths.
enum class RtCounter : std::uint8_t {
  kLocalHit = 0,      // block served from the requesting node's own shard
  kPeerHit,           // block copied from a remote master (coop-cache win)
  kDiskRead,          // block faulted in from backing storage (miss)
  kUncachedFallback,  // claim retries exhausted -> one-shot uncached read
  kMasterClaim,       // directory claims granted to this process's shards
  kMasterForward,     // masters shipped to a peer instead of evicted
  kInvalidation,      // file invalidations initiated here
  kReadOp,            // public read()/read_range() operations
  kWriteOp,           // public write() operations
  kStatsScrape,       // kStatsPull requests answered
  kCount,
};

inline constexpr std::size_t kRtCounterCount =
    static_cast<std::size_t>(RtCounter::kCount);

/// Stable display name ("local-hits", ...).
const char* rt_counter_name(RtCounter c);

/// Point-in-time copy of one histogram: plain integers, mergeable.
struct HistSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void merge(const HistSnapshot& other);

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// winning log2 bucket; 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double mean() const { return count ? double(sum) / double(count) : 0.0; }
};

/// Per-message-kind RPC metrics: latency distribution plus traffic counters.
struct RpcKindSnapshot {
  HistSnapshot latency_ns;
  std::uint64_t calls = 0;    // completed round trips
  std::uint64_t bytes = 0;    // payload bytes moved (request + reply)
  std::uint64_t retries = 0;  // call_with_retry re-attempts
  std::uint64_t errors = 0;   // calls that ended in a TransportError

  void merge(const RpcKindSnapshot& other);
};

/// Snapshot format version carried on the wire (kStatsPull payloads and
/// `--metrics-out` dumps); bump when the layout changes.
inline constexpr std::uint32_t kMetricsVersion = 1;

/// One process's (or, after merging, one cluster's) runtime metrics.
struct MetricsSnapshot {
  std::uint32_t version = kMetricsVersion;
  /// Lowest node id hosted by the reporting process — the dedupe key when a
  /// scraper reaches several nodes that share a process (and a registry).
  std::uint32_t host = 0;
  /// Number of process snapshots merged into this one.
  std::uint64_t processes = 1;

  std::array<RpcKindSnapshot, kMaxRpcKinds> rpc{};
  std::array<std::uint64_t, kRtCounterCount> counters{};
  HistSnapshot lock_wait_ns;  // shard-lock acquisition wait
  HistSnapshot op_read_ns;    // whole read/read_range operations
  HistSnapshot op_write_ns;   // whole write operations

  /// Commutative, associative accumulation (adds + max); keeps the lowest
  /// host id and sums `processes`.
  void merge(const MetricsSnapshot& other);

  /// Fixed little-endian binary form (the kStatsPull reply payload).
  [[nodiscard]] std::vector<std::byte> encode() const;
  /// nullopt on short input, bad magic, or version/geometry mismatch.
  static std::optional<MetricsSnapshot> decode(std::span<const std::byte> wire);
};

/// Streams `s` as one JSON object into `j` (caller opens/closes the
/// surrounding scope via key()). `kind_name` maps an RPC slot index to a
/// display name (pass proto::kind_name through a cast); slots with zero calls
/// are omitted. Latencies are reported in microseconds.
void metrics_json(util::JsonWriter& j, const MetricsSnapshot& s,
                  const char* (*kind_name)(std::uint8_t));

/// The live registry. One per process (CcmCluster owns one); every mutator
/// is lock-free and safe from any thread.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void record_rpc(std::uint8_t kind, std::uint64_t latency_ns,
                  std::uint64_t bytes);
  void record_rpc_error(std::uint8_t kind, std::uint64_t latency_ns);
  void record_retry(std::uint8_t kind);
  void incr(RtCounter c, std::uint64_t n = 1);
  void record_lock_wait(std::uint64_t ns);
  void record_op_read(std::uint64_t ns);
  void record_op_write(std::uint64_t ns);

  /// Reporting identity (see MetricsSnapshot::host).
  void set_host(std::uint32_t host) {
    host_.store(host, std::memory_order_relaxed);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every slot (between bench phases; racing records may survive).
  void reset();

 private:
  /// Recorders spread across kShards copies of the hot slots by thread
  /// identity; snapshot() folds the shards back together.
  static constexpr std::size_t kShards = 8;

  struct Hist {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};

    void record(std::uint64_t v);
    void fold_into(HistSnapshot& out) const;
    void clear();
  };

  struct RpcKind {
    Hist latency;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> errors{0};
  };

  struct alignas(64) Shard {
    std::array<RpcKind, kMaxRpcKinds> rpc{};
    std::array<std::atomic<std::uint64_t>, kRtCounterCount> counters{};
    Hist lock_wait;
    Hist op_read;
    Hist op_write;
  };

  Shard& my_shard();
  static std::size_t shard_index();

  std::array<Shard, kShards> shards_{};
  std::atomic<std::uint32_t> host_{0};
};

}  // namespace coop::obs
