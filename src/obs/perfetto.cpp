#include "obs/perfetto.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace coop::obs {

namespace {

constexpr double kMsToUs = 1000.0;
/// Request-phase threads start here; resource threads use the Resource enum.
constexpr std::uint32_t kRequestTidBase = 1000;
/// Render tracks per client thread block (branch tracks beyond this merge
/// onto the last one — cosmetic only).
constexpr std::uint32_t kTracksPerClient = 64;

std::uint32_t request_tid(const RequestTrace& req, std::uint32_t track) {
  return kRequestTidBase + req.client * kTracksPerClient +
         std::min(track, kTracksPerClient - 1);
}

void event_header(util::JsonWriter& json, const char* ph, std::uint64_t pid,
                  std::uint64_t tid) {
  json.begin_object();
  json.key("ph").value(ph);
  json.key("pid").value(pid);
  json.key("tid").value(tid);
}

void metadata(util::JsonWriter& json, const char* what, std::uint64_t pid,
              std::uint64_t tid, const std::string& name) {
  event_header(json, "M", pid, tid);
  json.key("name").value(what);
  json.key("args").begin_object();
  json.key("name").value(name);
  json.end_object();
  json.end_object();
}

void emit_process_metadata(util::JsonWriter& json, const TraceData& data) {
  for (std::size_t n = 0; n < data.nodes; ++n) {
    metadata(json, "process_name", n, 0, "node" + std::to_string(n));
    for (const Resource r :
         {Resource::kCpu, Resource::kBus, Resource::kNicTx, Resource::kNicRx,
          Resource::kDisk, Resource::kCache}) {
      metadata(json, "thread_name", n, static_cast<std::uint64_t>(r),
               to_string(r));
    }
  }
  metadata(json, "process_name", data.nodes, 0, "cluster");
  metadata(json, "thread_name", data.nodes,
           static_cast<std::uint64_t>(Resource::kRouter),
           to_string(Resource::kRouter));

  // Request-phase threads actually used, in (pid, tid) order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> threads;
  for (const auto& req : data.requests) {
    for (const auto& s : req.spans) {
      const std::uint64_t tid = request_tid(req, s.track);
      std::string name = "req client" + std::to_string(req.client);
      if (s.track > 0) name += " branch" + std::to_string(s.track);
      threads.emplace(std::make_pair(std::uint64_t{req.landing}, tid),
                      std::move(name));
    }
  }
  for (const auto& [key, name] : threads) {
    metadata(json, "thread_name", key.first, key.second, name);
  }
}

void emit_request_events(util::JsonWriter& json, const TraceData& data) {
  for (const auto& req : data.requests) {
    for (const auto& s : req.spans) {
      const sim::SimTime end = s.end >= s.begin ? s.end : data.end_ms;
      event_header(json, "X", req.landing, request_tid(req, s.track));
      json.key("cat").value("request");
      json.key("name").value(s.op);
      json.key("ts").value(s.begin * kMsToUs);
      json.key("dur").value((end - s.begin) * kMsToUs);
      json.key("args").begin_object();
      json.key("request").value(req.id);
      json.key("node").value(std::uint64_t{s.node});
      json.key("resource").value(to_string(s.resource));
      if (&s == &req.spans.front()) {
        json.key("file").value(std::uint64_t{req.file});
        json.key("client").value(std::uint64_t{req.client});
      }
      if (s.demand > 0.0) {
        json.key("service_ms").value(s.demand);
        json.key("queued_ms").value(std::max(0.0, end - s.begin - s.demand));
      }
      if (s.bytes > 0) json.key("bytes").value(s.bytes);
      if (!s.detail.empty()) json.key("detail").value(s.detail);
      json.end_object();
      json.end_object();
    }
  }
}

void emit_resource_events(util::JsonWriter& json, const TraceData& data) {
  for (const auto& req : data.requests) {
    for (const auto& s : req.spans) {
      if (s.demand <= 0.0 || s.end < s.begin) continue;
      if (s.resource == Resource::kPhase || s.resource == Resource::kCache) {
        continue;
      }
      const std::uint64_t pid =
          s.resource == Resource::kRouter ? data.nodes : s.node;
      event_header(json, "X", pid, static_cast<std::uint64_t>(s.resource));
      json.key("cat").value("resource");
      json.key("name").value(s.op);
      json.key("ts").value((s.end - s.demand) * kMsToUs);
      json.key("dur").value(s.demand * kMsToUs);
      json.key("args").begin_object();
      json.key("request").value(req.id);
      json.end_object();
      json.end_object();
    }
  }
}

void emit_counters(util::JsonWriter& json, const TraceData& data) {
  const Timeline& tl = data.timeline;
  for (std::size_t n = 0; n <= data.nodes; ++n) {
    const std::uint16_t node =
        n == data.nodes ? kClusterNode : static_cast<std::uint16_t>(n);
    const std::uint64_t pid = n;
    for (std::size_t ri = 0; ri < kResourceCount; ++ri) {
      const auto r = static_cast<Resource>(ri);
      const auto& lane = tl.lane(node, r);
      for (std::size_t bi = 0; bi < lane.size(); ++bi) {
        const TimelineBucket& b = lane[bi];
        if (b.empty()) continue;
        event_header(json, "C", pid, 0);
        json.key("name").value(to_string(r));
        json.key("ts").value(
            (tl.origin() + static_cast<double>(bi) * tl.bucket_ms()) *
            kMsToUs);
        json.key("args").begin_object();
        if (r == Resource::kCache) {
          json.key("hits").value(b.hits);
          json.key("misses").value(b.misses);
        } else {
          json.key("busy_ms").value(b.busy_ms);
          json.key("max_queue").value(b.max_queue);
        }
        if (b.bytes > 0) json.key("bytes").value(b.bytes);
        json.end_object();
        json.end_object();
      }
    }
  }
}

}  // namespace

namespace {

const char* lane_name(std::uint8_t lane) {
  switch (lane) {
    case kLaneOp: return "ops";
    case kLaneRpcClient: return "rpc";
    case kLaneHandler: return "handlers";
    default: return "other";
  }
}

constexpr double kNsToUs = 1.0 / 1000.0;

}  // namespace

std::string runtime_trace_json(const std::vector<RuntimeSpan>& spans) {
  // Deterministic event order for a given span set (the logs themselves are
  // wall-clock recordings, so only the serialization is order-stable).
  std::vector<const RuntimeSpan*> order;
  order.reserve(spans.size());
  for (const auto& s : spans) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const RuntimeSpan* a, const RuntimeSpan* b) {
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              if (a->node != b->node) return a->node < b->node;
              return a->span < b->span;
            });
  std::uint64_t origin = 0;
  if (!order.empty()) origin = order.front()->start_ns;

  util::JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").begin_object();
  json.key("mode").value("runtime-wall-clock");
  json.key("spans").value(static_cast<std::uint64_t>(spans.size()));
  json.key("origin_ns").value(origin);
  json.end_object();
  json.key("traceEvents").begin_array();

  // Process/thread naming: one process per node, one thread per lane.
  std::map<std::uint16_t, std::uint8_t> seen_lanes;  // node -> lane bitmask
  for (const auto* s : order) {
    auto& mask = seen_lanes[s->node];
    const auto bit = static_cast<std::uint8_t>(1u << (s->lane & 7));
    if ((mask & bit) != 0) continue;
    if (mask == 0) {
      metadata(json, "process_name", s->node, 0,
               "node" + std::to_string(s->node) + " (runtime)");
    }
    metadata(json, "thread_name", s->node, s->lane, lane_name(s->lane));
    mask |= bit;
  }

  for (const auto* s : order) {
    const double ts = static_cast<double>(s->start_ns - origin) * kNsToUs;
    const double dur =
        static_cast<double>(s->end_ns > s->start_ns ? s->end_ns - s->start_ns
                                                    : 0) *
        kNsToUs;
    event_header(json, "X", s->node, s->lane);
    json.key("name").value(s->name);
    json.key("cat").value("runtime");
    json.key("ts").value(ts);
    json.key("dur").value(dur);
    json.key("args").begin_object();
    json.key("trace").value(s->trace);
    json.key("span").value(s->span);
    json.key("parent").value(s->parent);
    json.end_object();
    json.end_object();
    // Flow arrows: an RPC client slice starts flow id = its span id; the
    // handler slice it triggered (parent == that span id, possibly in
    // another process) finishes it.
    if (s->lane == kLaneRpcClient) {
      event_header(json, "s", s->node, s->lane);
      json.key("name").value("rpc");
      json.key("cat").value("rpc-flow");
      json.key("id").value(s->span);
      json.key("ts").value(ts);
      json.end_object();
    } else if (s->lane == kLaneHandler && s->parent != 0) {
      event_header(json, "f", s->node, s->lane);
      json.key("name").value("rpc");
      json.key("cat").value("rpc-flow");
      json.key("bp").value("e");
      json.key("id").value(s->parent);
      json.key("ts").value(ts);
      json.end_object();
    }
  }

  json.end_array();
  json.end_object();
  return json.str();
}

std::string chrome_trace_json(const TraceData& data) {
  util::JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").begin_object();
  json.key("sample_every").value(data.config.sample_every);
  json.key("ring_capacity").value(
      static_cast<std::uint64_t>(data.config.ring_capacity));
  json.key("timeline_bucket_ms").value(data.config.timeline_bucket_ms);
  json.key("requests_sampled").value(data.requests_sampled);
  json.key("requests_committed").value(data.requests_committed);
  json.key("requests_evicted").value(data.requests_evicted);
  json.key("measure_start_ms").value(data.measure_start_ms);
  json.key("end_ms").value(data.end_ms);
  json.end_object();
  json.key("traceEvents").begin_array();
  emit_process_metadata(json, data);
  emit_request_events(json, data);
  emit_resource_events(json, data);
  emit_counters(json, data);
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace coop::obs
