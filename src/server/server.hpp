// Common interface for the two simulated server architectures.
#pragma once

#include <cstdint>
#include <utility>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace coop::obs {
class Timeline;
}  // namespace coop::obs

namespace coop::server {

using NodeId = std::uint16_t;

/// Per-request context threaded through `Server::handle`. `span` is the
/// request's root tracing span — inactive (all operations no-ops) unless the
/// run was started with tracing enabled, so servers can instrument
/// unconditionally.
struct RequestInfo {
  std::uint64_t id = 0;
  obs::SpanCtx span;
};

/// A cluster-wide web server. `handle` is invoked when a client request for
/// `file` has arrived at `node` (router and NIC ingress already charged);
/// `on_served` must fire once the full response has left toward the client.
class Server {
 public:
  virtual ~Server() = default;

  virtual void handle(NodeId node, trace::FileId file, const RequestInfo& req,
                      sim::Callback on_served) = 0;

  /// Convenience overload for untraced callers (tests, tools). Derived
  /// classes re-expose it with `using Server::handle;`.
  void handle(NodeId node, trace::FileId file, sim::Callback on_served) {
    handle(node, file, RequestInfo{}, std::move(on_served));
  }

  /// Restarts hit/operation counters (cache *contents* are preserved) for
  /// the post-warm-up measurement window.
  virtual void reset_stats() = 0;

  /// Points the server at a per-node observability timeline (cache hit/miss
  /// lanes). Null detaches; the default implementation ignores it.
  virtual void attach_timeline(obs::Timeline* timeline) { (void)timeline; }

  // Hit accounting over the current window. Local = served from the memory
  // of the node the client contacted; remote = served from another node's
  // memory (a peer fetch for CCM, a migrated request for L2S).
  [[nodiscard]] virtual double local_hit_rate() const = 0;
  [[nodiscard]] virtual double remote_hit_rate() const = 0;

  [[nodiscard]] virtual std::uint64_t remote_block_fetches() const {
    return 0;
  }
  [[nodiscard]] virtual std::uint64_t master_forwards() const { return 0; }
  [[nodiscard]] virtual std::uint64_t replications() const { return 0; }
  [[nodiscard]] virtual std::uint64_t handoffs() const { return 0; }
  [[nodiscard]] virtual std::uint64_t hint_misdirects() const { return 0; }
};

}  // namespace coop::server
