// Round-robin DNS request distribution (§4.2): clients spread requests over
// the cluster nodes in cyclic order, with no content awareness. Content-aware
// decisions (L2S) happen *inside* the cluster after a request lands.
#pragma once

#include <cstddef>
#include <cstdint>

namespace coop::server {

class RoundRobinDispatcher {
 public:
  explicit RoundRobinDispatcher(std::size_t nodes) : nodes_(nodes) {}

  /// Next node in cyclic order.
  std::uint16_t pick() {
    const auto n = static_cast<std::uint16_t>(next_);
    next_ = (next_ + 1) % nodes_;
    return n;
  }

  [[nodiscard]] std::size_t nodes() const { return nodes_; }

 private:
  std::size_t nodes_;
  std::size_t next_ = 0;
};

}  // namespace coop::server
