// Web server built on the cooperative caching middleware (the paper's
// system under test).
//
// Request path (§3 + Table 1): parse -> process file request (per-block CPU)
// -> consult ClusterCache -> execute the resulting plan (peer fetches over
// the LAN, disk reads at home nodes, asynchronous master forwards) -> serve
// the response. The policy transition is applied instantaneously at plan
// time, matching the paper's optimistic perfect-directory assumptions; the
// simulator then charges all the latencies and occupancies the plan implies.
#pragma once

#include <memory>
#include <vector>

#include "cache/coop_cache.hpp"
#include "hw/network.hpp"
#include "hw/node.hpp"
#include "proto/plan.hpp"
#include "server/server.hpp"

namespace coop::server {

class CcmServer final : public Server {
 public:
  /// `nodes` must outlive the server. `cache_config.nodes` must equal
  /// `nodes.size()`. `home_of` optionally overrides the file-to-home-disk
  /// placement (defaults to file-id modulo nodes).
  CcmServer(sim::Engine& engine, hw::Network& network,
            std::vector<std::unique_ptr<hw::Node>>& nodes,
            const trace::FileSet& files,
            const cache::CoopCacheConfig& cache_config,
            const hw::ModelParams& params,
            std::function<cache::NodeId(cache::FileId)> home_of = {});

  void handle(NodeId node, trace::FileId file, const RequestInfo& req,
              sim::Callback on_served) override;
  using Server::handle;

  void reset_stats() override { cache_.reset_stats(); }

  void attach_timeline(obs::Timeline* timeline) override {
    timeline_ = timeline;
  }

  [[nodiscard]] double local_hit_rate() const override {
    return cache_.stats().local_hit_rate();
  }
  [[nodiscard]] double remote_hit_rate() const override {
    return cache_.stats().remote_hit_rate();
  }
  [[nodiscard]] std::uint64_t remote_block_fetches() const override {
    return cache_.stats().remote_hits;
  }
  [[nodiscard]] std::uint64_t master_forwards() const override {
    return cache_.stats().forwards_attempted;
  }
  [[nodiscard]] std::uint64_t hint_misdirects() const override {
    return cache_.stats().hint_misdirects;
  }

  [[nodiscard]] const cache::ClusterCache& cache() const { return cache_; }

 private:
  /// Executes fetches/forwards of `plan`; `on_all_blocks` fires when every
  /// block of the request is in `node`'s memory. `span` is the request's
  /// fetch-phase span (inactive when untraced); transfer groups branch off it.
  void execute_plan(NodeId node, cache::AccessResult plan, obs::SpanCtx span,
                    sim::Callback on_all_blocks);

  /// Charges the control messages `(*msgs)[i..]` as network control hops, in
  /// order, then fires `done`. `keep` pins the TransferPlan the messages
  /// live in for the duration of the chain.
  void send_control_chain(std::shared_ptr<proto::TransferPlan> keep,
                          const std::vector<proto::Message>* msgs,
                          std::size_t i, sim::Callback done);

  /// Bytes of block `index` of a file `file_bytes` long.
  [[nodiscard]] std::uint32_t block_bytes_of(std::uint64_t file_bytes,
                                             std::uint32_t index) const;

  sim::Engine& engine_;
  hw::Network& network_;
  std::vector<std::unique_ptr<hw::Node>>& nodes_;
  const trace::FileSet& files_;
  hw::ModelParams params_;
  cache::ClusterCache cache_;
  obs::Timeline* timeline_ = nullptr;
};

}  // namespace coop::server
