// L2S: the locality- and load-conscious baseline (§4.1).
//
// Behaviors reproduced from the paper's description of Bianchini & Carrera's
// server:
//  * whole files are the caching granularity;
//  * requests for a file are migrated (TCP hand-off) to a node already
//    caching it, so one copy per file is the steady state;
//  * when the caching node is overloaded, the file is *replicated* at the
//    (less loaded) node the request originally landed on, trading memory
//    efficiency for load balance;
//  * de-replication is LRU that prefers replicas and keeps the last copy
//    (implemented by cache::WholeFileCache);
//  * files are replicated on every node's disk, so misses always read from
//    the serving node's local disk;
//  * TCP hand-off lets the serving node answer the client directly; with
//    hand-off disabled (ablation A2), the response relays through the node
//    that accepted the connection, costing a second serve + transfer.
#pragma once

#include <memory>
#include <vector>

#include "cache/whole_file_cache.hpp"
#include "hw/network.hpp"
#include "hw/node.hpp"
#include "server/server.hpp"

namespace coop::server {

struct L2sConfig {
  cache::WholeFileCacheConfig cache;
  /// A holder with at least this many outstanding jobs is overloaded.
  std::size_t overload_threshold = 6;
  /// Replicate only if the landing node's load is below the holder's minus
  /// this margin (hysteresis against replication thrash).
  std::size_t replication_margin = 2;
  bool tcp_handoff = true;
};

class L2sServer final : public Server {
 public:
  L2sServer(sim::Engine& engine, hw::Network& network,
            std::vector<std::unique_ptr<hw::Node>>& nodes,
            const trace::FileSet& files, const L2sConfig& config,
            const hw::ModelParams& params);

  void handle(NodeId node, trace::FileId file, const RequestInfo& req,
              sim::Callback on_served) override;
  using Server::handle;

  void reset_stats() override;

  void attach_timeline(obs::Timeline* timeline) override {
    timeline_ = timeline;
  }

  /// Always-compiled invariant sweep (cache state plus the server's own
  /// serve/hand-off accounting); returns the number of violations. Event
  /// sites call it via CCM_AUDIT_HOOK in audited builds.
  std::size_t audit(const char* context) const;

  [[nodiscard]] double local_hit_rate() const override;
  [[nodiscard]] double remote_hit_rate() const override;
  [[nodiscard]] std::uint64_t replications() const override {
    return replications_;
  }
  [[nodiscard]] std::uint64_t handoffs() const override { return handoffs_; }

  [[nodiscard]] const cache::WholeFileCache& cache() const { return cache_; }

 private:
  /// Picks the node that should serve `file` for a request that landed on
  /// `landing`; may decide to replicate. Pure decision, no costs.
  [[nodiscard]] NodeId pick_target(NodeId landing, trace::FileId file);

  /// Runs the request at `target` (cache probe, disk on miss, serve).
  /// `root` is the request's root span (inactive when untraced).
  void serve_at(NodeId target, NodeId landing, trace::FileId file,
                obs::SpanCtx root, sim::Callback on_served);

  sim::Engine& engine_;
  hw::Network& network_;
  std::vector<std::unique_ptr<hw::Node>>& nodes_;
  const trace::FileSet& files_;
  L2sConfig config_;
  hw::ModelParams params_;
  cache::WholeFileCache cache_;

  std::uint64_t requests_ = 0;
  std::uint64_t local_hits_ = 0;
  std::uint64_t migrated_hits_ = 0;
  std::uint64_t replications_ = 0;
  std::uint64_t handoffs_ = 0;
  // Serve accounting: every serve_at records exactly one hit or miss, so
  // local_hits_ + migrated_hits_ + misses_ == serves_ at every event.
  std::uint64_t misses_ = 0;
  std::uint64_t serves_ = 0;
  obs::Timeline* timeline_ = nullptr;

  friend struct L2sServerTestPeer;
};

/// Test-only backdoor for corrupting counters to prove audits trip.
struct L2sServerTestPeer;

}  // namespace coop::server
