#include "server/client.hpp"

#include <algorithm>
#include <cassert>

namespace coop::server {

ClientPool::ClientPool(sim::Engine& engine, hw::Network& network,
                       std::vector<std::unique_ptr<hw::Node>>& nodes,
                       Server& server, const trace::Trace& trace,
                       const ClientPoolConfig& config,
                       MetricsCollector& collector, sim::Callback on_warm,
                       obs::Tracer* tracer)
    : engine_(engine),
      network_(network),
      nodes_(nodes),
      server_(server),
      trace_(trace),
      config_(config),
      collector_(collector),
      on_warm_(std::move(on_warm)),
      tracer_(tracer),
      dispatcher_(nodes.size()),
      warmup_count_(static_cast<std::size_t>(
          static_cast<double>(trace.requests.size()) *
          std::clamp(config.warmup_fraction, 0.0, 0.95))) {}

void ClientPool::start() {
  const std::size_t n =
      std::min(config_.clients, trace_.requests.size());
  for (std::size_t c = 0; c < n; ++c) {
    issue_next(static_cast<std::uint32_t>(c));
  }
}

void ClientPool::issue_next(std::uint32_t client) {
  if (next_request_ >= trace_.requests.size()) return;  // this client retires
  const std::size_t my = next_request_++;
  if (!warmed_ && my >= warmup_count_) {
    warmed_ = true;
    if (on_warm_) on_warm_();
  }
  const bool measured = my >= warmup_count_;
  const trace::FileId file = trace_.requests[my];
  const NodeId node = dispatcher_.pick();
  const sim::SimTime issued_at = engine_.now();

  obs::SpanCtx root;
  if (tracer_ != nullptr) {
    root = tracer_->begin_request(my, file, node, client);
  }
  const obs::SpanCtx dispatch =
      root.begin("net.dispatch", obs::Resource::kRouter, node);

  network_.client_request(
      *nodes_[node],
      [this, node, file, issued_at, measured, client, my, root, dispatch]() {
        dispatch.end();
        server_.handle(
            node, file, RequestInfo{my, root},
            [this, file, issued_at, measured, client, root]() {
              ++completed_;
              if (measured) {
                collector_.record_response(engine_.now() - issued_at,
                                           trace_.files.size_bytes(file));
              }
              root.end();
              issue_next(client);
            });
      });
}

}  // namespace coop::server
