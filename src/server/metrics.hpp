// Run-level metrics: everything Figures 2-6 plot.
#pragma once

#include <cstdint>

#include "sim/stats.hpp"

namespace coop::server {

/// Collected over the measurement window (after cache warm-up, §4.3).
struct RunMetrics {
  // Offered/served load.
  std::uint64_t requests = 0;
  std::uint64_t bytes_served = 0;
  double duration_ms = 0.0;

  /// Requests per second (the paper's throughput axis).
  double throughput_rps = 0.0;
  /// Payload megabytes per second.
  double throughput_mbps = 0.0;

  // Response time (client-observed, ms).
  double mean_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;

  // Hit rates. For CCM these are block-level (local = requested block in the
  // serving node's memory, remote = master found at a peer); for L2S,
  // file-level at the serving node.
  double local_hit_rate = 0.0;
  double remote_hit_rate = 0.0;
  [[nodiscard]] double global_hit_rate() const {
    return local_hit_rate + remote_hit_rate;
  }

  // Resource utilization over the measurement window, averaged across nodes,
  // plus the hottest single disk (the paper's bottleneck discussion).
  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;
  double nic_utilization = 0.0;
  double max_disk_utilization = 0.0;
  double router_utilization = 0.0;

  // Raw event counters.
  std::uint64_t disk_block_reads = 0;
  std::uint64_t disk_seeks = 0;
  std::uint64_t remote_block_fetches = 0;
  std::uint64_t master_forwards = 0;
  std::uint64_t replications = 0;   // L2S only
  std::uint64_t handoffs = 0;       // L2S request migrations
  std::uint64_t hint_misdirects = 0;  // CCM hinted-directory mode only

  /// Field-wise equality; the harness uses it to verify that parallel sweep
  /// execution is bit-identical to the serial path.
  friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

/// Accumulates client-observed response times and served bytes during the
/// measurement window.
class MetricsCollector {
 public:
  void record_response(double latency_ms, std::uint64_t bytes) {
    latencies_.add(latency_ms);
    hist_.add(latency_ms);
    bytes_ += bytes;
  }

  void reset() {
    latencies_.reset();
    hist_.reset();
    bytes_ = 0;
  }

  [[nodiscard]] std::uint64_t responses() const { return latencies_.count(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] double mean_latency() const { return latencies_.mean(); }
  [[nodiscard]] double percentile(double p) const {
    return hist_.percentile(p);
  }

 private:
  sim::Accumulator latencies_;
  sim::LatencyHistogram hist_{1e-2, 1e5, 192};
  std::uint64_t bytes_ = 0;
};

}  // namespace coop::server
