// Whole-cluster simulation assembly: builds the engine, nodes, network,
// server (CCM variant or L2S), and client pool; runs a trace through it; and
// collects the metrics of Figures 2-6.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/coop_cache.hpp"
#include "hw/params.hpp"
#include "obs/perfetto.hpp"
#include "server/client.hpp"
#include "server/metrics.hpp"
#include "trace/trace.hpp"

namespace coop::server {

/// The four systems of Figure 2.
enum class SystemKind {
  kL2S,      // locality/load-conscious baseline
  kCcBasic,  // traditional cooperative caching, FIFO disk queue
  kCcSched,  // + seek-aware disk scheduling (the paper's first fix)
  kCcNem     // + never-evict-master replacement (the paper's contribution)
};

[[nodiscard]] const char* to_string(SystemKind kind);

/// Parses the CLI spellings used by the benches ("l2s", "cc-basic",
/// "cc-sched", "cc-nem", case-insensitive); throws std::invalid_argument on
/// anything else.
[[nodiscard]] SystemKind system_from_string(const std::string& name);

struct ClusterConfig {
  SystemKind system = SystemKind::kCcNem;
  std::size_t nodes = 8;
  std::uint64_t memory_per_node = 64ull * 1024 * 1024;
  hw::ModelParams params;
  ClientPoolConfig clients;

  // CCM knobs.
  cache::DirectoryMode directory = cache::DirectoryMode::kPerfect;
  std::uint32_t hint_staleness = 1;
  /// Whole-file adaptation of CCM (§6); applies to the CC-* systems.
  bool ccm_whole_file = false;

  // L2S knobs.
  bool tcp_handoff = true;
  std::size_t overload_threshold = 6;
  std::size_t replication_margin = 2;

  /// Optional override of the file-to-home-node placement (CCM); defaults to
  /// file-id modulo nodes. Used by the hot-spot ablation (A5).
  std::function<std::uint16_t(trace::FileId)> home_of;
};

/// Stable 64-bit fingerprint of every simulation-affecting POD field of the
/// config (system, geometry, Table-1 costs, client pool, CCM/L2S knobs).
/// Used by the harness's JSON run reports to tie metrics to the exact
/// configuration that produced them. `home_of` (an opaque callable) is
/// represented only by a present/absent bit.
[[nodiscard]] std::uint64_t config_hash(const ClusterConfig& config);

/// Runs `trace` through a cluster built from `config` and returns the
/// measurement-window metrics. Deterministic: same config + trace => same
/// result.
///
/// Thread-safety / re-entrancy: every piece of mutable state (engine, nodes,
/// network, server, caches, collectors) is constructed locally per call, and
/// `config`/`trace` are only read. Concurrent calls may therefore share one
/// `const Trace&` — the parallel sweep executor (harness/executor) relies on
/// this. `config.home_of`, if set, must be safe to invoke concurrently
/// (stateless lambdas are; the benches use nothing else).
RunMetrics run_simulation(const ClusterConfig& config,
                          const trace::Trace& trace);

/// Traced variant. When `obs_config.enabled`, request spans, per-resource
/// busy/queue timelines, and (in audited builds) the audit span-dump hook are
/// wired into the run; the results land in `*trace_out` (may be null to
/// discard). Tracing is strictly passive: the returned metrics are identical
/// to the untraced overload's, and `obs_config` is deliberately NOT part of
/// config_hash. With `obs_config.enabled == false` this is exactly the
/// untraced run.
RunMetrics run_simulation(const ClusterConfig& config,
                          const trace::Trace& trace,
                          const obs::TraceConfig& obs_config,
                          obs::TraceData* trace_out);

}  // namespace coop::server
