#include "server/ccm_server.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "obs/timeline.hpp"

namespace coop::server {

namespace {

/// Barrier: fires `done` after `expected` calls to `arrive()`.
struct Join {
  std::size_t remaining;
  sim::Callback done;

  static std::shared_ptr<Join> make(std::size_t expected, sim::Callback done) {
    auto j = std::make_shared<Join>();
    j->remaining = expected;
    j->done = std::move(done);
    if (expected == 0 && j->done) {
      // Degenerate barrier: complete immediately.
      auto cb = std::move(j->done);
      cb();
    }
    return j;
  }

  void arrive() {
    assert(remaining > 0);
    if (--remaining == 0 && done) {
      auto cb = std::move(done);
      cb();
    }
  }
};

}  // namespace

CcmServer::CcmServer(sim::Engine& engine, hw::Network& network,
                     std::vector<std::unique_ptr<hw::Node>>& nodes,
                     const trace::FileSet& files,
                     const cache::CoopCacheConfig& cache_config,
                     const hw::ModelParams& params,
                     std::function<cache::NodeId(cache::FileId)> home_of)
    : engine_(engine),
      network_(network),
      nodes_(nodes),
      files_(files),
      params_(params),
      cache_(cache_config, std::move(home_of)) {
  assert(cache_config.nodes == nodes.size());
  assert(cache_config.block_bytes == params.block_bytes);
}

std::uint32_t CcmServer::block_bytes_of(std::uint64_t file_bytes,
                                        std::uint32_t index) const {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * params_.block_bytes;
  if (file_bytes <= start) return 0;  // zero-byte file's single block
  const std::uint64_t remain = file_bytes - start;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(remain, params_.block_bytes));
}

void CcmServer::handle(NodeId node, trace::FileId file, const RequestInfo& req,
                       sim::Callback on_served) {
  hw::Node& self = *nodes_[node];
  const std::uint64_t size = files_.size_bytes(file);
  const std::uint32_t nblocks = cache::blocks_for(size, params_.block_bytes);
  const obs::SpanCtx root = req.span;

  const obs::SpanCtx parse =
      root.begin("cpu.parse", obs::Resource::kCpu, node, params_.parse_ms);
  self.cpu().submit(params_.parse_ms, [this, node, file, size, nblocks, root,
                                       parse,
                                       done = std::move(on_served)]() mutable {
    parse.end();
    hw::Node& me = *nodes_[node];
    const obs::SpanCtx process =
        root.begin("cpu.process", obs::Resource::kCpu, node,
                   params_.process_request_ms(nblocks));
    me.cpu().submit(
        params_.process_request_ms(nblocks),
        [this, node, file, size, root, process,
         done2 = std::move(done)]() mutable {
          process.end();
          // Policy transition (instantaneous, per the paper's optimistic
          // directory assumptions); then charge everything it implies.
          auto plan = cache_.access(node, file, size);
          if (timeline_ != nullptr) {
            std::uint64_t hits = 0;
            std::uint64_t misses = 0;
            for (const auto& f : plan.fetches) {
              if (f.source == cache::Source::kDiskRead) {
                ++misses;
              } else {
                ++hits;
              }
            }
            timeline_->add_cache_access(node, engine_.now(), hits, misses);
          }
          const obs::SpanCtx fetch =
              root.begin("fetch", obs::Resource::kPhase, node);
          execute_plan(
              node, std::move(plan), fetch,
              [this, node, size, root, fetch,
               done3 = std::move(done2)]() mutable {
                fetch.end();
                hw::Node& n = *nodes_[node];
                const obs::SpanCtx serve = root.begin(
                    "cpu.serve", obs::Resource::kCpu, node,
                    params_.serve_ms(size));
                n.cpu().submit(
                    params_.serve_ms(size),
                    [this, node, size, root, serve,
                     done4 = std::move(done3)]() mutable {
                      serve.end();
                      const obs::SpanCtx respond =
                          root.begin("net.respond", obs::Resource::kNicTx,
                                     node, 0.0, size);
                      network_.respond_to_client(
                          *nodes_[node], size,
                          [respond, done5 = std::move(done4)]() mutable {
                            respond.end();
                            if (done5) done5();
                          });
                    });
              });
        });
  });
}

void CcmServer::send_control_chain(std::shared_ptr<proto::TransferPlan> keep,
                                   const std::vector<proto::Message>* msgs,
                                   std::size_t i, sim::Callback done) {
  if (i >= msgs->size()) {
    if (done) done();
    return;
  }
  const proto::Message& m = (*msgs)[i];
  network_.send_control(
      *nodes_[m.from], *nodes_[m.to],
      [this, keep = std::move(keep), msgs, i,
       done = std::move(done)]() mutable {
        send_control_chain(std::move(keep), msgs, i + 1, std::move(done));
      });
}

void CcmServer::execute_plan(NodeId node, cache::AccessResult plan,
                             obs::SpanCtx span, sim::Callback on_all_blocks) {
  hw::Node& self = *nodes_[node];
  // Whole-file mode: one fetch entry stands for the file's full block
  // footprint (transfers carry the whole file; per-block CPU costs still
  // apply to every real block).
  const bool whole_file = cache_.config().whole_file;

  // Lower the policy actions to the CCM wire protocol: one transfer group
  // per provider, each with its control-message sequence and bulk payload.
  // The simulator charges exactly these messages — the same vocabulary the
  // threaded runtime transports (docs/MIDDLEWARE.md).
  proto::PlanContext pctx;
  pctx.block_bytes = params_.block_bytes;
  pctx.whole_file = whole_file;
  pctx.file_bytes_of = [this](cache::FileId f) {
    return files_.size_bytes(f);
  };
  auto tplan = std::make_shared<proto::TransferPlan>(
      proto::build_transfer_plan(node, plan, pctx));

  auto join =
      Join::make(tplan->remote.size() + tplan->disk.size(),
                 std::move(on_all_blocks));

  // --- Peer fetches: control msg(s) -> peer CPU -> bulk transfer -> cache. ---
  for (const auto& tg : tplan->remote) {
    const NodeId provider = tg.provider;
    hw::Node& peer = *nodes_[provider];
    const std::uint64_t k = tg.charge_blocks;
    const std::uint64_t bytes = tg.bytes;
    const obs::SpanCtx g =
        span.branch("fetch.remote", obs::Resource::kNicRx, node, bytes);
    if (g.active()) {
      std::string detail = "provider=" + std::to_string(provider) +
                           " blocks=" + std::to_string(k);
      if (tg.misdirected) detail += " misdirected";
      g.note(std::move(detail));
    }
    // Whole-file transfers are long enough to be worth phase-level spans
    // (serve at the peer, wire time, caching here); block-mode traces keep
    // their original single-span shape.
    const bool sub_spans = whole_file && g.active();
    auto after_control = [this, &peer, &self, k, bytes, node, provider, g,
                          sub_spans, join]() {
      const obs::SpanCtx serve =
          sub_spans ? g.begin("wholefile.serve", obs::Resource::kCpu, provider,
                              params_.serve_peer_block_ms *
                                  static_cast<double>(k))
                    : obs::SpanCtx{};
      peer.cpu().submit(
          params_.serve_peer_block_ms * static_cast<double>(k),
          [this, &peer, &self, k, bytes, node, provider, g, serve, sub_spans,
           join]() {
            serve.end();
            const obs::SpanCtx ship =
                sub_spans ? g.begin("wholefile.ship", obs::Resource::kNicTx,
                                    provider, 0.0, bytes)
                          : obs::SpanCtx{};
            network_.send(peer, self, bytes, [this, &self, k, bytes, node,
                                              provider, g, ship, sub_spans,
                                              join]() {
              ship.end();
              if (timeline_ != nullptr) {
                timeline_->add_bytes(provider, obs::Resource::kNicTx,
                                     engine_.now(), bytes);
                timeline_->add_bytes(node, obs::Resource::kNicRx,
                                     engine_.now(), bytes);
              }
              const obs::SpanCtx cache_cpu =
                  sub_spans ? g.begin("wholefile.cache", obs::Resource::kCpu,
                                      node,
                                      params_.cache_block_ms *
                                          static_cast<double>(k))
                            : obs::SpanCtx{};
              self.cpu().submit(
                  params_.cache_block_ms * static_cast<double>(k),
                  [g, cache_cpu, join]() {
                    cache_cpu.end();
                    g.end();
                    join->arrive();
                  });
            });
          });
    };
    send_control_chain(tplan, &tg.control, 0, std::move(after_control));
  }

  // --- Disk reads at the home node (possibly this node). ---
  for (const auto& tg : tplan->disk) {
    const NodeId home = tg.provider;
    hw::Node& reader = *nodes_[home];
    const std::uint64_t bytes = tg.bytes;
    const std::uint64_t k = tg.charge_blocks;

    const obs::SpanCtx g =
        span.branch("fetch.disk", obs::Resource::kDisk, home, bytes);
    if (g.active()) {
      g.note("home=" + std::to_string(home) +
             " blocks=" + std::to_string(k));
    }
    const bool sub_spans = whole_file && g.active();
    auto do_reads = [this, &reader, &self, blocks = &tg.blocks, tplan, bytes,
                     k, g, sub_spans, join, home, node, whole_file]() mutable {
      const obs::SpanCtx read =
          sub_spans ? g.begin("wholefile.read", obs::Resource::kDisk, home,
                              0.0, bytes)
                    : obs::SpanCtx{};
      auto after_reads = [this, &reader, &self, bytes, k, g, read, sub_spans,
                          join, home, node]() {
        read.end();
        if (home == node) {
          // Local disk: bus into memory, then per-block cache cost.
          self.bus().submit(params_.bus_ms(bytes), [this, &self, k, g,
                                                    sub_spans, join, node]() {
            const obs::SpanCtx cache_cpu =
                sub_spans ? g.begin("wholefile.cache", obs::Resource::kCpu,
                                    node,
                                    params_.cache_block_ms *
                                        static_cast<double>(k))
                          : obs::SpanCtx{};
            self.cpu().submit(params_.cache_block_ms * static_cast<double>(k),
                              [g, cache_cpu, join]() {
                                cache_cpu.end();
                                g.end();
                                join->arrive();
                              });
          });
        } else {
          // Remote home: ship the blocks over, then cache them here.
          const obs::SpanCtx ship =
              sub_spans ? g.begin("wholefile.ship", obs::Resource::kNicTx,
                                  home, 0.0, bytes)
                        : obs::SpanCtx{};
          network_.send(reader, self, bytes, [this, &self, k, bytes, g, ship,
                                              sub_spans, home, node, join]() {
            ship.end();
            if (timeline_ != nullptr) {
              timeline_->add_bytes(home, obs::Resource::kNicTx, engine_.now(),
                                   bytes);
              timeline_->add_bytes(node, obs::Resource::kNicRx, engine_.now(),
                                   bytes);
            }
            const obs::SpanCtx cache_cpu =
                sub_spans ? g.begin("wholefile.cache", obs::Resource::kCpu,
                                    node,
                                    params_.cache_block_ms *
                                        static_cast<double>(k))
                          : obs::SpanCtx{};
            self.cpu().submit(params_.cache_block_ms * static_cast<double>(k),
                              [g, cache_cpu, join]() {
                                cache_cpu.end();
                                g.end();
                                join->arrive();
                              });
          });
        }
      };
      // Blocks are demand-read one at a time, so concurrent request streams
      // interleave at the disk exactly as in the paper's §5 analysis.
      const std::uint64_t fb =
          blocks->empty() ? 0 : files_.size_bytes((*blocks)[0].file);
      std::vector<hw::BlockRead> seq;
      if (whole_file && !blocks->empty()) {
        const std::uint32_t nb = cache::blocks_for(fb, params_.block_bytes);
        seq.reserve(nb);
        for (std::uint32_t i = 0; i < nb; ++i) {
          seq.push_back(hw::BlockRead{(*blocks)[0].file, i,
                                      block_bytes_of(fb, i)});
        }
      } else {
        seq.reserve(blocks->size());
        for (const auto& b : *blocks) {
          seq.push_back(
              hw::BlockRead{b.file, b.index, block_bytes_of(fb, b.index)});
        }
      }
      hw::read_sequence(reader.disk(), std::move(seq), std::move(after_reads));
    };

    send_control_chain(tplan, &tg.control, 0, std::move(do_reads));
  }

  // --- Master forwards: asynchronous, off the request's critical path. ---
  for (const auto& step : tplan->forwards) {
    const cache::Forward fw = step.forward;
    hw::Node& from = *nodes_[fw.from];
    const std::uint64_t fw_bytes = step.bytes;
    // Traced forwards keep the request in flight until the transfer lands;
    // the tracer only commits the request once every span has closed.
    obs::SpanCtx f;
    if (span.active() && step.message.has_value()) {
      f = span.branch("forward.master", obs::Resource::kNicTx, fw.from,
                      fw_bytes);
      if (f.active()) f.note("to=" + std::to_string(fw.to));
    }
    from.cpu().submit(params_.evict_master_ms,
                      [this, fw, &from, fw_bytes, f]() {
                        if (fw.to == cache::kInvalidNode) return;
                        sim::Callback on_landed;
                        if (f.active()) on_landed = [f]() { f.end(); };
                        network_.send(from, *nodes_[fw.to], fw_bytes,
                                      std::move(on_landed));
                      });
  }
}

}  // namespace coop::server
