#include "server/l2s_server.hpp"

#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "cache/types.hpp"

namespace coop::server {

L2sServer::L2sServer(sim::Engine& engine, hw::Network& network,
                     std::vector<std::unique_ptr<hw::Node>>& nodes,
                     const trace::FileSet& files, const L2sConfig& config,
                     const hw::ModelParams& params)
    : engine_(engine),
      network_(network),
      nodes_(nodes),
      files_(files),
      config_(config),
      params_(params),
      cache_(config.cache) {
  assert(config.cache.nodes == nodes.size());
}

NodeId L2sServer::pick_target(NodeId landing, trace::FileId file) {
  if (cache_.cached(landing, file)) return landing;

  const auto holders = cache_.holders(file);
  if (holders.empty()) return landing;  // first touch: serve where it landed

  // Least-loaded current holder. The load signal is *serving* (CPU) load:
  // counting disk-queue depth here would make cold-miss streams look like
  // overload and trigger replication storms of cold files — the opposite of
  // the hot-file replication the paper describes.
  NodeId best = holders.front();
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const auto h : holders) {
    const std::size_t l = nodes_[h]->cpu().load();
    if (l < best_load) {
      best_load = l;
      best = h;
    }
  }

  // Load-aware replication: an overloaded holder sheds the file to the
  // landing node when the landing node is comfortably less loaded.
  const std::size_t landing_load = nodes_[landing]->cpu().load();
  if (best_load >= config_.overload_threshold &&
      landing_load + config_.replication_margin <= best_load) {
    ++replications_;
    return landing;
  }
  return best;
}

void L2sServer::handle(NodeId node, trace::FileId file,
                       sim::Callback on_served) {
  hw::Node& self = *nodes_[node];
  self.cpu().submit(params_.parse_ms, [this, node, file,
                                       done = std::move(on_served)]() mutable {
    const NodeId target = pick_target(node, file);
    ++requests_;
    if (target == node) {
      serve_at(node, node, file, std::move(done));
      return;
    }
    // Migrate the request (TCP hand-off is a small control message).
    ++handoffs_;
    network_.send_control(*nodes_[node], *nodes_[target],
                          [this, target, node, file,
                           done2 = std::move(done)]() mutable {
                            serve_at(target, node, file, std::move(done2));
                          });
  });
}

void L2sServer::serve_at(NodeId target, NodeId landing, trace::FileId file,
                         sim::Callback on_served) {
  hw::Node& server = *nodes_[target];
  const std::uint64_t size = files_.size_bytes(file);

  // Response path: with TCP hand-off the serving node answers the client
  // directly; without it, the payload relays through the landing node which
  // pays a second serve cost.
  auto respond = [this, target, landing, size,
                  done = std::move(on_served)]() mutable {
    hw::Node& server2 = *nodes_[target];
    server2.cpu().submit(
        params_.serve_ms(size),
        [this, target, landing, size, done2 = std::move(done)]() mutable {
          if (config_.tcp_handoff || target == landing) {
            network_.respond_to_client(*nodes_[target], size,
                                       std::move(done2));
            return;
          }
          network_.send(*nodes_[target], *nodes_[landing], size,
                        [this, landing, size, done3 = std::move(done2)]() mutable {
                          nodes_[landing]->cpu().submit(
                              params_.serve_ms(size),
                              [this, landing, size,
                               done4 = std::move(done3)]() mutable {
                                network_.respond_to_client(*nodes_[landing],
                                                           size,
                                                           std::move(done4));
                              });
                        });
        });
  };

  if (cache_.cached(target, file)) {
    cache_.touch(target, file);
    if (target == landing) {
      ++local_hits_;
    } else {
      ++migrated_hits_;
    }
    respond();
    return;
  }

  // Replication (or a placement race): the file is cached at some other
  // node. Copy it from that node's memory over the LAN instead of re-reading
  // the disk — the overloaded holder serves one last transfer and the
  // replica is live.
  const auto holders = cache_.holders(file);
  if (!holders.empty()) {
    NodeId donor = holders.front();
    std::size_t donor_load = std::numeric_limits<std::size_t>::max();
    for (const auto h : holders) {
      const std::size_t l = nodes_[h]->cpu().load();
      if (l < donor_load) {
        donor_load = l;
        donor = h;
      }
    }
    cache_.insert(target, file, size);
    ++migrated_hits_;  // served from cluster memory, not disk
    network_.send_control(
        server, *nodes_[donor],
        [this, donor, target, size, respond = std::move(respond)]() mutable {
          nodes_[donor]->cpu().submit(
              params_.serve_ms(size),
              [this, donor, target, size,
               respond2 = std::move(respond)]() mutable {
                network_.send(*nodes_[donor], *nodes_[target], size,
                              std::move(respond2));
              });
        });
    return;
  }

  // Miss: whole-file read from the local disk (files live on every disk),
  // admitting the file into the whole-file cache. Blocks stream one at a
  // time, so concurrent misses interleave at the disk like any other stream.
  cache_.insert(target, file, size);
  const std::uint32_t nblocks = cache::blocks_for(size, params_.block_bytes);
  std::vector<hw::BlockRead> seq;
  seq.reserve(nblocks);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint64_t start =
        static_cast<std::uint64_t>(b) * params_.block_bytes;
    const auto bytes = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        size > start ? size - start : 0, params_.block_bytes));
    seq.push_back(hw::BlockRead{file, b, bytes});
  }
  hw::read_sequence(
      server.disk(), std::move(seq),
      [this, target, size, respond = std::move(respond)]() mutable {
        // All blocks on platter: one bus transfer into memory, then respond.
        nodes_[target]->bus().submit(params_.bus_ms(size), std::move(respond));
      });
}

void L2sServer::reset_stats() {
  requests_ = 0;
  local_hits_ = 0;
  migrated_hits_ = 0;
  replications_ = 0;
  handoffs_ = 0;
}

double L2sServer::local_hit_rate() const {
  return requests_ ? static_cast<double>(local_hits_) /
                         static_cast<double>(requests_)
                   : 0.0;
}

double L2sServer::remote_hit_rate() const {
  return requests_ ? static_cast<double>(migrated_hits_) /
                         static_cast<double>(requests_)
                   : 0.0;
}

}  // namespace coop::server
