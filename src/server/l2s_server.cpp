#include "server/l2s_server.hpp"

#include <cassert>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "cache/types.hpp"
#include "obs/timeline.hpp"
#include "util/audit.hpp"

namespace coop::server {

L2sServer::L2sServer(sim::Engine& engine, hw::Network& network,
                     std::vector<std::unique_ptr<hw::Node>>& nodes,
                     const trace::FileSet& files, const L2sConfig& config,
                     const hw::ModelParams& params)
    : engine_(engine),
      network_(network),
      nodes_(nodes),
      files_(files),
      config_(config),
      params_(params),
      cache_(config.cache) {
  assert(config.cache.nodes == nodes.size());
}

NodeId L2sServer::pick_target(NodeId landing, trace::FileId file) {
  if (cache_.cached(landing, file)) return landing;

  const auto holders = cache_.holders(file);
  if (holders.empty()) return landing;  // first touch: serve where it landed

  // Least-loaded current holder. The load signal is *serving* (CPU) load:
  // counting disk-queue depth here would make cold-miss streams look like
  // overload and trigger replication storms of cold files — the opposite of
  // the hot-file replication the paper describes.
  NodeId best = holders.front();
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const auto h : holders) {
    const std::size_t l = nodes_[h]->cpu().load();
    if (l < best_load) {
      best_load = l;
      best = h;
    }
  }

  // Load-aware replication: an overloaded holder sheds the file to the
  // landing node when the landing node is comfortably less loaded.
  const std::size_t landing_load = nodes_[landing]->cpu().load();
  if (best_load >= config_.overload_threshold &&
      landing_load + config_.replication_margin <= best_load) {
    ++replications_;
    return landing;
  }
  return best;
}

void L2sServer::handle(NodeId node, trace::FileId file, const RequestInfo& req,
                       sim::Callback on_served) {
  hw::Node& self = *nodes_[node];
  const obs::SpanCtx root = req.span;
  const obs::SpanCtx parse =
      root.begin("cpu.parse", obs::Resource::kCpu, node, params_.parse_ms);
  self.cpu().submit(params_.parse_ms, [this, node, file, root, parse,
                                       done = std::move(on_served)]() mutable {
    parse.end();
    const NodeId target = pick_target(node, file);
    ++requests_;
    CCM_AUDIT_HOOK(audit("handle"));
    if (target == node) {
      serve_at(node, node, file, root, std::move(done));
      return;
    }
    // Migrate the request (TCP hand-off is a small control message).
    ++handoffs_;
    const obs::SpanCtx handoff =
        root.begin("handoff", obs::Resource::kNicTx, node);
    if (handoff.active()) handoff.note("target=" + std::to_string(target));
    network_.send_control(*nodes_[node], *nodes_[target],
                          [this, target, node, file, root, handoff,
                           done2 = std::move(done)]() mutable {
                            handoff.end();
                            serve_at(target, node, file, root,
                                     std::move(done2));
                          });
  });
}

void L2sServer::serve_at(NodeId target, NodeId landing, trace::FileId file,
                         obs::SpanCtx root, sim::Callback on_served) {
  hw::Node& server = *nodes_[target];
  const std::uint64_t size = files_.size_bytes(file);

  // Response path: with TCP hand-off the serving node answers the client
  // directly; without it, the payload relays through the landing node which
  // pays a second serve cost.
  auto respond = [this, target, landing, size, root,
                  done = std::move(on_served)]() mutable {
    hw::Node& server2 = *nodes_[target];
    const obs::SpanCtx serve = root.begin(
        "cpu.serve", obs::Resource::kCpu, target, params_.serve_ms(size));
    server2.cpu().submit(
        params_.serve_ms(size),
        [this, target, landing, size, root, serve,
         done2 = std::move(done)]() mutable {
          serve.end();
          if (config_.tcp_handoff || target == landing) {
            const obs::SpanCtx resp = root.begin(
                "net.respond", obs::Resource::kNicTx, target, 0.0, size);
            network_.respond_to_client(
                *nodes_[target], size,
                [resp, done3 = std::move(done2)]() mutable {
                  resp.end();
                  if (done3) done3();
                });
            return;
          }
          const obs::SpanCtx relay = root.begin(
              "net.relay", obs::Resource::kNicTx, target, 0.0, size);
          network_.send(*nodes_[target], *nodes_[landing], size,
                        [this, landing, size, root, relay,
                         done3 = std::move(done2)]() mutable {
                          relay.end();
                          const obs::SpanCtx serve2 = root.begin(
                              "cpu.serve", obs::Resource::kCpu, landing,
                              params_.serve_ms(size));
                          nodes_[landing]->cpu().submit(
                              params_.serve_ms(size),
                              [this, landing, size, root, serve2,
                               done4 = std::move(done3)]() mutable {
                                serve2.end();
                                const obs::SpanCtx resp = root.begin(
                                    "net.respond", obs::Resource::kNicTx,
                                    landing, 0.0, size);
                                network_.respond_to_client(
                                    *nodes_[landing], size,
                                    [resp,
                                     done5 = std::move(done4)]() mutable {
                                      resp.end();
                                      if (done5) done5();
                                    });
                              });
                        });
        });
  };

  if (cache_.cached(target, file)) {
    cache_.touch(target, file);
    if (target == landing) {
      ++local_hits_;
    } else {
      ++migrated_hits_;
    }
    ++serves_;
    if (timeline_ != nullptr) {
      timeline_->add_cache_access(target, engine_.now(), 1, 0);
    }
    if (root.active()) {
      const obs::SpanCtx probe =
          root.begin("cache.probe", obs::Resource::kCache, target);
      probe.note(target == landing ? "hit local" : "hit migrated");
      probe.end();
    }
    CCM_AUDIT_HOOK(audit("serve_at"));
    respond();
    return;
  }

  // Replication (or a placement race): the file is cached at some other
  // node. Copy it from that node's memory over the LAN instead of re-reading
  // the disk — the overloaded holder serves one last transfer and the
  // replica is live.
  const auto holders = cache_.holders(file);
  if (!holders.empty()) {
    NodeId donor = holders.front();
    std::size_t donor_load = std::numeric_limits<std::size_t>::max();
    for (const auto h : holders) {
      const std::size_t l = nodes_[h]->cpu().load();
      if (l < donor_load) {
        donor_load = l;
        donor = h;
      }
    }
    cache_.insert(target, file, size);
    ++migrated_hits_;  // served from cluster memory, not disk
    ++serves_;
    if (timeline_ != nullptr) {
      timeline_->add_cache_access(target, engine_.now(), 1, 0);
    }
    const obs::SpanCtx repl = root.begin("replicate", obs::Resource::kNicRx,
                                         target, 0.0, size);
    if (repl.active()) repl.note("donor=" + std::to_string(donor));
    CCM_AUDIT_HOOK(audit("serve_at"));
    network_.send_control(
        server, *nodes_[donor],
        [this, donor, target, size, repl,
         respond = std::move(respond)]() mutable {
          nodes_[donor]->cpu().submit(
              params_.serve_ms(size),
              [this, donor, target, size, repl,
               respond2 = std::move(respond)]() mutable {
                network_.send(*nodes_[donor], *nodes_[target], size,
                              [this, donor, target, size, repl,
                               respond3 = std::move(respond2)]() mutable {
                                if (timeline_ != nullptr) {
                                  timeline_->add_bytes(
                                      donor, obs::Resource::kNicTx,
                                      engine_.now(), size);
                                  timeline_->add_bytes(
                                      target, obs::Resource::kNicRx,
                                      engine_.now(), size);
                                }
                                repl.end();
                                respond3();
                              });
              });
        });
    return;
  }

  // Miss: whole-file read from the local disk (files live on every disk),
  // admitting the file into the whole-file cache. Blocks stream one at a
  // time, so concurrent misses interleave at the disk like any other stream.
  cache_.insert(target, file, size);
  ++misses_;
  ++serves_;
  if (timeline_ != nullptr) {
    timeline_->add_cache_access(target, engine_.now(), 0, 1);
  }
  CCM_AUDIT_HOOK(audit("serve_at"));
  const std::uint32_t nblocks = cache::blocks_for(size, params_.block_bytes);
  std::vector<hw::BlockRead> seq;
  seq.reserve(nblocks);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint64_t start =
        static_cast<std::uint64_t>(b) * params_.block_bytes;
    const auto bytes = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        size > start ? size - start : 0, params_.block_bytes));
    seq.push_back(hw::BlockRead{file, b, bytes});
  }
  const obs::SpanCtx read =
      root.begin("disk.read", obs::Resource::kDisk, target, 0.0, size);
  hw::read_sequence(
      server.disk(), std::move(seq),
      [this, target, size, root, read,
       respond = std::move(respond)]() mutable {
        read.end();
        // All blocks on platter: one bus transfer into memory, then respond.
        const obs::SpanCtx copy = root.begin(
            "bus.copy", obs::Resource::kBus, target, params_.bus_ms(size));
        nodes_[target]->bus().submit(
            params_.bus_ms(size),
            [copy, respond2 = std::move(respond)]() mutable {
              copy.end();
              respond2();
            });
      });
}

void L2sServer::reset_stats() {
  requests_ = 0;
  local_hits_ = 0;
  migrated_hits_ = 0;
  replications_ = 0;
  handoffs_ = 0;
  misses_ = 0;
  serves_ = 0;
}

std::size_t L2sServer::audit(const char* context) const {
  std::size_t ccm_audit_failures = cache_.audit(context);
  const std::string ctx = std::string(" [") + context + "]";
  // Every serve_at accounts exactly one hit or miss in the same event that
  // bumps serves_, so this equality holds at every event boundary (all four
  // counters also reset together at the warm-up boundary).
  CCM_AUDIT(local_hits_ + migrated_hits_ + misses_ == serves_,
            "l2s-serve-accounting",
            std::to_string(local_hits_) + " local + " +
                std::to_string(migrated_hits_) + " migrated + " +
                std::to_string(misses_) + " misses != " +
                std::to_string(serves_) + " serves" + ctx);
  // A hand-off is recorded in the same event as its request.
  CCM_AUDIT(handoffs_ <= requests_, "l2s-handoff-accounting",
            std::to_string(handoffs_) + " handoffs exceed " +
                std::to_string(requests_) + " requests" + ctx);
  return ccm_audit_failures;
}

double L2sServer::local_hit_rate() const {
  return requests_ ? static_cast<double>(local_hits_) /
                         static_cast<double>(requests_)
                   : 0.0;
}

double L2sServer::remote_hit_rate() const {
  return requests_ ? static_cast<double>(migrated_hits_) /
                         static_cast<double>(requests_)
                   : 0.0;
}

}  // namespace coop::server
