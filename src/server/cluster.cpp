#include "server/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <utility>

#include "server/ccm_server.hpp"
#include "server/l2s_server.hpp"
#include "util/audit.hpp"

namespace coop::server {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kL2S:
      return "L2S";
    case SystemKind::kCcBasic:
      return "CC-Basic";
    case SystemKind::kCcSched:
      return "CC-Sched";
    case SystemKind::kCcNem:
      return "CC-NEM";
  }
  return "?";
}

SystemKind system_from_string(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (const char c : name) {
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (s == "l2s") return SystemKind::kL2S;
  if (s == "cc-basic") return SystemKind::kCcBasic;
  if (s == "cc-sched") return SystemKind::kCcSched;
  if (s == "cc-nem") return SystemKind::kCcNem;
  throw std::invalid_argument(
      "unknown system '" + name +
      "' (expected l2s, cc-basic, cc-sched, or cc-nem)");
}

namespace {

/// FNV-1a accumulation over raw bytes; doubles are hashed by bit pattern.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

}  // namespace

std::uint64_t config_hash(const ClusterConfig& config) {
  Fnv f;
  f.u64(static_cast<std::uint64_t>(config.system));
  f.u64(config.nodes);
  f.u64(config.memory_per_node);

  const hw::ModelParams& p = config.params;
  f.u64(p.block_bytes);
  f.u64(p.disk_unit_bytes);
  f.f64(p.parse_ms);
  f.f64(p.serve_base_ms);
  f.f64(p.serve_per_kb_ms);
  f.f64(p.process_request_base_ms);
  f.f64(p.process_request_per_block_ms);
  f.f64(p.serve_peer_block_ms);
  f.f64(p.cache_block_ms);
  f.f64(p.evict_master_ms);
  f.f64(p.disk_seek_ms);
  f.f64(p.disk_per_kb_ms);
  f.f64(p.bus_base_ms);
  f.f64(p.bus_per_kb_ms);
  f.f64(p.net_latency_ms);
  f.f64(p.nic_per_kb_ms);
  f.f64(p.control_kb);
  f.f64(p.router_ms);

  f.u64(config.clients.clients);
  f.f64(config.clients.warmup_fraction);

  f.u64(static_cast<std::uint64_t>(config.directory));
  f.u64(config.hint_staleness);
  f.u64(config.ccm_whole_file ? 1 : 0);
  f.u64(config.tcp_handoff ? 1 : 0);
  f.u64(config.overload_threshold);
  f.u64(config.replication_margin);
  f.u64(config.home_of ? 1 : 0);
  return f.h;
}

namespace {

hw::DiskSched disk_sched_for(SystemKind system) {
  // CC-Basic models the paper's original configuration with a FIFO disk
  // queue; every other system benefits from request scheduling (for L2S the
  // OS elevator; for CC-Sched/CC-NEM the paper's explicit fix).
  return system == SystemKind::kCcBasic ? hw::DiskSched::kFifo
                                        : hw::DiskSched::kSeekAware;
}

std::unique_ptr<Server> build_server(
    const ClusterConfig& config, sim::Engine& engine, hw::Network& network,
    std::vector<std::unique_ptr<hw::Node>>& nodes, const trace::Trace& trace) {
  if (config.system == SystemKind::kL2S) {
    L2sConfig lc;
    lc.cache.nodes = config.nodes;
    lc.cache.capacity_bytes = config.memory_per_node;
    lc.cache.block_bytes = config.params.block_bytes;
    lc.overload_threshold = config.overload_threshold;
    lc.replication_margin = config.replication_margin;
    lc.tcp_handoff = config.tcp_handoff;
    return std::make_unique<L2sServer>(engine, network, nodes, trace.files,
                                       lc, config.params);
  }
  cache::CoopCacheConfig cc;
  cc.nodes = config.nodes;
  cc.capacity_bytes = config.memory_per_node;
  cc.block_bytes = config.params.block_bytes;
  cc.policy = config.system == SystemKind::kCcNem
                  ? cache::Policy::kNeverEvictMaster
                  : cache::Policy::kBasic;
  cc.directory = config.directory;
  cc.hint_staleness = config.hint_staleness;
  cc.whole_file = config.ccm_whole_file;
  return std::make_unique<CcmServer>(engine, network, nodes, trace.files, cc,
                                     config.params, config.home_of);
}

}  // namespace

namespace {

/// Best-effort extraction of "node <id>" from an audit violation's detail
/// string, so the span dump can focus on the offending node.
std::optional<std::uint16_t> node_in_detail(const std::string& detail) {
  const std::size_t pos = detail.find("node ");
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + 5;
  if (i >= detail.size() || detail[i] < '0' || detail[i] > '9') {
    return std::nullopt;
  }
  unsigned value = 0;
  while (i < detail.size() && detail[i] >= '0' && detail[i] <= '9') {
    value = value * 10 + static_cast<unsigned>(detail[i] - '0');
    if (value > 0xFFFF) return std::nullopt;
    ++i;
  }
  return static_cast<std::uint16_t>(value);
}

}  // namespace

RunMetrics run_simulation(const ClusterConfig& config,
                          const trace::Trace& trace) {
  return run_simulation(config, trace, obs::TraceConfig{}, nullptr);
}

RunMetrics run_simulation(const ClusterConfig& config,
                          const trace::Trace& trace,
                          const obs::TraceConfig& obs_config,
                          obs::TraceData* trace_out) {
  if (config.nodes == 0) throw std::invalid_argument("cluster needs nodes");
  if (!hw::validate(config.params)) {
    throw std::invalid_argument("invalid model parameters");
  }

  sim::Engine engine;
  hw::Network network(engine, config.params);
  std::vector<std::unique_ptr<hw::Node>> nodes;
  nodes.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes.push_back(std::make_unique<hw::Node>(engine, config.params,
                                               disk_sched_for(config.system),
                                               static_cast<std::uint16_t>(i)));
  }

  std::unique_ptr<Server> server =
      build_server(config, engine, network, nodes, trace);

  // Observability (all passive: sinks and probes record, never schedule).
  const bool tracing = obs_config.enabled;
  std::optional<obs::Tracer> tracer;
  obs::Timeline timeline;
  if (tracing) {
    obs::TracerConfig tc;
    tc.sample_every = std::max<std::uint64_t>(1, obs_config.sample_every);
    tc.ring_capacity = obs_config.ring_capacity;
    tracer.emplace(engine, tc);
    timeline = obs::Timeline(config.nodes, obs_config.timeline_bucket_ms);

    auto attach = [&timeline](sim::ServiceCenter& c, std::uint16_t nid,
                              obs::Resource r) {
      c.set_busy_interval_sink(
          [&timeline, nid, r](sim::SimTime begin, sim::SimTime end_t) {
            timeline.add_busy(nid, r, begin, end_t);
          });
      c.set_queue_probe(
          [&timeline, nid, r](sim::SimTime now, std::size_t depth) {
            timeline.note_queue_depth(nid, r, now, depth);
          });
    };
    for (std::size_t i = 0; i < config.nodes; ++i) {
      hw::Node& n = *nodes[i];
      const auto nid = static_cast<std::uint16_t>(i);
      attach(n.cpu(), nid, obs::Resource::kCpu);
      attach(n.bus(), nid, obs::Resource::kBus);
      attach(n.nic_tx(), nid, obs::Resource::kNicTx);
      attach(n.nic_rx(), nid, obs::Resource::kNicRx);
      n.disk().set_busy_interval_sink(
          [&timeline, nid](sim::SimTime begin, sim::SimTime end_t) {
            timeline.add_busy(nid, obs::Resource::kDisk, begin, end_t);
          });
      n.disk().set_queue_probe(
          [&timeline, nid](sim::SimTime now, std::size_t depth) {
            timeline.note_queue_depth(nid, obs::Resource::kDisk, now, depth);
          });
    }
    attach(network.router(), obs::kClusterNode, obs::Resource::kRouter);
    server->attach_timeline(&timeline);
  }

  // Audit integration: when an invariant trips in an audited build, dump the
  // in-flight sampled spans (focused on the offending node when the detail
  // names one) before deferring. The handler is a per-thread overlay, so
  // parallel sweep workers each dump their own tracer's spans; report_global
  // then routes to whatever process-wide handler (Recorder, default abort)
  // is installed.
  audit::Handler prev_handler;
  bool handler_installed = false;
  if (tracing && obs_config.audit_dump && audit::hooks_compiled_in()) {
    prev_handler = audit::set_thread_handler([&tracer, &prev_handler](
                                                 const audit::Violation& v) {
      std::cerr << "[obs] in-flight sampled requests at violation '"
                << v.invariant << "':\n";
      if (const auto node = node_in_detail(v.detail)) {
        tracer->dump_in_flight(std::cerr, *node);
      } else {
        tracer->dump_in_flight(std::cerr);
      }
      if (prev_handler) {
        prev_handler(v);
      } else {
        audit::report_global(v);
      }
    });
    handler_installed = true;
  }

  MetricsCollector collector;
  sim::SimTime measure_start = 0.0;

  ClientPool clients(engine, network, nodes, *server, trace, config.clients,
                     collector,
                     [&]() {
                       // Warm-up boundary: restart every statistics window
                       // but keep cache contents (steady-state measurement).
                       measure_start = engine.now();
                       collector.reset();
                       server->reset_stats();
                       for (auto& n : nodes) n->reset_stats();
                       network.router().reset_stats();
                       if (tracing) timeline.rebase(engine.now());
                     },
                     tracer ? &*tracer : nullptr);
  clients.start();
  engine.run();

  if (handler_installed) audit::set_thread_handler(std::move(prev_handler));

  if (!clients.finished()) {
    throw std::logic_error("simulation drained before the trace finished");
  }

  const sim::SimTime end = engine.now();
  const double window_ms = end - measure_start;

  RunMetrics m;
  m.requests = collector.responses();
  m.bytes_served = collector.bytes();
  m.duration_ms = window_ms;
  if (window_ms > 0.0) {
    m.throughput_rps =
        static_cast<double>(m.requests) / (window_ms / 1000.0);
    m.throughput_mbps = static_cast<double>(m.bytes_served) /
                        (1024.0 * 1024.0) / (window_ms / 1000.0);
  }
  m.mean_response_ms = collector.mean_latency();
  m.p50_response_ms = collector.percentile(50);
  m.p95_response_ms = collector.percentile(95);
  m.p99_response_ms = collector.percentile(99);

  m.local_hit_rate = server->local_hit_rate();
  m.remote_hit_rate = server->remote_hit_rate();
  m.remote_block_fetches = server->remote_block_fetches();
  m.master_forwards = server->master_forwards();
  m.replications = server->replications();
  m.handoffs = server->handoffs();
  m.hint_misdirects = server->hint_misdirects();

  double cpu = 0, disk = 0, nic = 0, max_disk = 0;
  std::uint64_t disk_reads = 0, seeks = 0;
  for (const auto& n : nodes) {
    cpu += n->cpu_utilization(end);
    const double d = n->disk_utilization(end);
    disk += d;
    max_disk = std::max(max_disk, d);
    nic += n->nic_utilization(end);
    disk_reads += n->disk().completed();
    seeks += n->disk().seeks();
  }
  const auto nn = static_cast<double>(config.nodes);
  m.cpu_utilization = cpu / nn;
  m.disk_utilization = disk / nn;
  m.nic_utilization = nic / nn;
  m.max_disk_utilization = max_disk;
  m.router_utilization = network.router_utilization();
  m.disk_block_reads = disk_reads;
  m.disk_seeks = seeks;

  if (tracing) {
    server->attach_timeline(nullptr);
    if (trace_out != nullptr) {
      trace_out->config = obs_config;
      trace_out->nodes = config.nodes;
      trace_out->requests_sampled = tracer->started();
      trace_out->requests_committed = tracer->committed();
      trace_out->requests_evicted = tracer->evicted();
      trace_out->measure_start_ms = measure_start;
      trace_out->end_ms = end;
      trace_out->requests = tracer->take_completed();
      trace_out->timeline = std::move(timeline);
    }
  }
  return m;
}

}  // namespace coop::server
