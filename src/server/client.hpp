// Closed-loop HTTP clients (§4.3): "Each HTTP client generates a new request
// as soon as the previous one has been served", and throughput is measured
// only after the caches have warmed up.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/network.hpp"
#include "hw/node.hpp"
#include "obs/trace.hpp"
#include "server/dispatcher.hpp"
#include "server/metrics.hpp"
#include "server/server.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace coop::server {

struct ClientPoolConfig {
  /// Number of concurrent closed-loop clients.
  std::size_t clients = 64;
  /// Fraction of the trace used to warm the caches before measuring.
  double warmup_fraction = 0.3;
};

class ClientPool {
 public:
  /// `on_warm` fires once, when the warm-up request prefix has been issued;
  /// the cluster uses it to reset all statistics windows.
  /// `tracer`, when non-null, records sampled request spans (observability;
  /// never perturbs scheduling).
  ClientPool(sim::Engine& engine, hw::Network& network,
             std::vector<std::unique_ptr<hw::Node>>& nodes, Server& server,
             const trace::Trace& trace, const ClientPoolConfig& config,
             MetricsCollector& collector, sim::Callback on_warm,
             obs::Tracer* tracer = nullptr);

  /// Launches all clients; they run until the trace is exhausted.
  void start();

  [[nodiscard]] std::uint64_t issued() const { return next_request_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::size_t warmup_requests() const { return warmup_count_; }
  [[nodiscard]] bool finished() const {
    return completed_ == trace_.requests.size();
  }

 private:
  /// One client's next iteration: pull the next trace entry, dispatch it,
  /// and reissue on completion. `client` identifies the closed-loop client
  /// slot (span attribution only).
  void issue_next(std::uint32_t client);

  sim::Engine& engine_;
  hw::Network& network_;
  std::vector<std::unique_ptr<hw::Node>>& nodes_;
  Server& server_;
  const trace::Trace& trace_;
  ClientPoolConfig config_;
  MetricsCollector& collector_;
  sim::Callback on_warm_;
  obs::Tracer* tracer_;

  RoundRobinDispatcher dispatcher_;
  std::size_t warmup_count_;
  std::size_t next_request_ = 0;
  std::uint64_t completed_ = 0;
  bool warmed_ = false;
};

}  // namespace coop::server
