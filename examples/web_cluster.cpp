// web_cluster: drive the threaded middleware with a Zipf web workload from
// concurrent client threads — the scenario the paper's introduction
// motivates — and compare the replacement policies live.
//
//   web_cluster [--nodes=4] [--mem-kb=2048] [--files=400] [--requests=20000]
//               [--clients=8] [--alpha=0.8] [--write-frac=0.0]
//
// With --write-frac > 0, that fraction of operations are writes through the
// §6 write-protocol extension (owner migration + copy invalidation).
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "sim/random.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

struct LoadResult {
  double wall_seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  coop::cache::CacheStats stats;
};

LoadResult run_load(coop::cache::Policy policy, std::size_t nodes,
                    std::uint64_t mem_bytes, std::size_t files,
                    std::size_t requests, std::size_t clients, double alpha,
                    double write_frac) {
  using namespace coop;
  sim::Rng size_rng(42);
  std::vector<std::uint32_t> sizes(files);
  for (auto& s : sizes) {
    s = static_cast<std::uint32_t>(
        std::max(512.0, size_rng.lognormal(std::log(12.0 * 1024), 1.0)));
  }
  // Writable storage so --write-frac works; reads behave identically.
  auto storage = std::make_shared<ccm::BufferStorage>(sizes);

  ccm::CcmConfig config;
  config.nodes = nodes;
  config.capacity_bytes = mem_bytes;
  config.policy = policy;
  config.workers_per_node = 2;
  ccm::CcmCluster cluster(config, storage);

  std::atomic<std::uint64_t> served_requests{0};
  std::atomic<std::uint64_t> served_bytes{0};
  const std::size_t per_client = requests / clients;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      sim::Rng rng(1000 + c);
      const sim::ZipfSampler zipf(files, alpha);
      std::size_t rr = c;  // round-robin DNS, per client
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto file = static_cast<cache::FileId>(zipf.sample(rng));
        const auto via = static_cast<cache::NodeId>(rr++ % nodes);
        if (rng.uniform() < write_frac) {
          const std::uint64_t size = storage->file_size(file);
          std::vector<std::byte> payload(
              std::min<std::uint64_t>(size, 1024),
              static_cast<std::byte>(i & 0xFF));
          if (!payload.empty()) cluster.write(via, file, 0, payload);
          served_requests.fetch_add(1, std::memory_order_relaxed);
          served_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
        } else {
          const auto data = cluster.read(via, file);
          served_requests.fetch_add(1, std::memory_order_relaxed);
          served_bytes.fetch_add(data.size(), std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  LoadResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.requests = served_requests.load();
  r.bytes = served_bytes.load();
  r.stats = cluster.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  const auto mem = static_cast<std::uint64_t>(flags.get_int("mem-kb", 2048)) *
                   1024;
  const auto files = static_cast<std::size_t>(flags.get_int("files", 400));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 20000));
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 8));
  const double alpha = flags.get_double("alpha", 0.8);
  const double write_frac = flags.get_double("write-frac", 0.0);

  std::cout << "web_cluster: " << nodes << " nodes x "
            << util::human_bytes(mem) << ", " << files << " files, "
            << requests << " requests from " << clients << " clients\n\n";

  for (const auto policy :
       {cache::Policy::kBasic, cache::Policy::kNeverEvictMaster}) {
    const char* name =
        policy == cache::Policy::kBasic ? "CC-Basic" : "CC-NEM ";
    const auto r =
        run_load(policy, nodes, mem, files, requests, clients, alpha,
                 write_frac);
    const auto& s = r.stats;
    std::cout << name << ": " << util::fixed(r.wall_seconds, 2) << " s, "
              << util::fixed(static_cast<double>(r.requests) / r.wall_seconds,
                             0)
              << " req/s, "
              << util::fixed(static_cast<double>(r.bytes) / (1 << 20) /
                                 r.wall_seconds,
                             1)
              << " MiB/s\n"
              << "          hits: local " << util::percent(s.local_hit_rate())
              << ", remote " << util::percent(s.remote_hit_rate())
              << ", storage reads " << s.disk_reads << ", forwards "
              << s.forwards_attempted;
    if (s.writes > 0) {
      std::cout << ", writes " << s.writes << " (invalidations "
                << s.invalidations << ", owner moves "
                << s.ownership_migrations << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nCC-NEM keeps master blocks in cluster memory, so it "
               "converts storage reads into remote hits.\n";
  return 0;
}
