// trace_explorer: generate, inspect, and export the synthetic trace presets.
//
//   trace_explorer                       # Table-2-style summary of presets
//   trace_explorer --trace=rutgers       # detail + Figure-1 CDF
//   trace_explorer --trace=nasa --out=nasa.trace   # export to file
//   trace_explorer --in=nasa.trace       # inspect an exported/converted log
#include <iostream>

#include "trace/io.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

void summarize(const coop::trace::Trace& tr) {
  using namespace coop;
  const auto s = trace::compute_stats(tr, 10);
  std::cout << tr.name << ": " << s.num_files << " files ("
            << util::fixed(s.avg_file_kb, 1) << " KB avg), "
            << s.num_requests << " requests ("
            << util::fixed(s.avg_request_kb, 1) << " KB avg), file set "
            << util::fixed(s.file_set_mb, 1) << " MB, 99% working set "
            << util::fixed(static_cast<double>(s.working_set_bytes_99) /
                               (1024.0 * 1024.0),
                           1)
            << " MB\n";
}

void detail(const coop::trace::Trace& tr) {
  using namespace coop;
  summarize(tr);
  const auto s = trace::compute_stats(tr, 20);
  std::cout << "\npopularity/size CDF (files sorted by request count):\n";
  util::TextTable t;
  t.set_header({"top files", "requests", "bytes"});
  for (const auto& p : s.cdf) {
    t.add_row({util::percent(p.file_fraction, 0),
               util::percent(p.request_fraction, 1),
               util::human_bytes(p.cum_bytes)});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);

  if (flags.has("in")) {
    const auto tr = trace::read_trace_file(flags.get("in"));
    if (!tr) {
      std::cerr << "cannot read trace file " << flags.get("in") << "\n";
      return 1;
    }
    detail(*tr);
    return 0;
  }

  if (!flags.has("trace")) {
    std::cout << "synthetic presets (see DESIGN.md for calibration):\n";
    for (const auto& spec : trace::all_presets()) {
      summarize(trace::generate(spec));
    }
    std::cout << "\nrun with --trace=NAME for the CDF, --out=FILE to export\n";
    return 0;
  }

  const auto spec = trace::preset_by_name(flags.get("trace"));
  const auto tr = trace::generate(spec);
  if (flags.has("out")) {
    if (!trace::write_trace_file(flags.get("out"), tr)) {
      std::cerr << "cannot write " << flags.get("out") << "\n";
      return 1;
    }
    std::cout << "wrote " << flags.get("out") << "\n";
    return 0;
  }
  detail(tr);
  return 0;
}
