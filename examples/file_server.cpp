// file_server: serve a real directory tree through the middleware.
//
//   file_server --root=/path/to/docs [--nodes=4] [--mem-kb=4096] [--list]
//   file_server --root=/path --get=relative/or/indexed/file
//
// Without --get, reads every file once through round-robin nodes (a crawl),
// then re-reads the first ten (hot set) and prints the cache behavior.
#include <iostream>
#include <string>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string root = flags.get("root", ".");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  const auto mem =
      static_cast<std::uint64_t>(flags.get_int("mem-kb", 4096)) * 1024;

  std::shared_ptr<ccm::FileStorage> storage;
  try {
    storage = std::make_shared<ccm::FileStorage>(root);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (storage->file_count() == 0) {
    std::cerr << "no files under " << root << "\n";
    return 1;
  }
  std::cout << "serving " << storage->file_count() << " files from " << root
            << " on " << nodes << " nodes x " << util::human_bytes(mem)
            << "\n";

  if (flags.get_bool("list", false)) {
    for (cache::FileId f = 0; f < storage->file_count(); ++f) {
      std::cout << "  [" << f << "] " << storage->path_of(f) << " ("
                << util::human_bytes(storage->file_size(f)) << ")\n";
    }
    return 0;
  }

  ccm::CcmConfig config;
  config.nodes = nodes;
  config.capacity_bytes = mem;
  ccm::CcmCluster cluster(config, storage);

  if (flags.has("get")) {
    const std::string want = flags.get("get");
    for (cache::FileId f = 0; f < storage->file_count(); ++f) {
      if (storage->path_of(f).find(want) == std::string::npos) continue;
      const auto data = cluster.read(0, f);
      std::cout.write(reinterpret_cast<const char*>(data.data()),
                      static_cast<std::streamsize>(data.size()));
      return 0;
    }
    std::cerr << "no file matching '" << want << "'\n";
    return 1;
  }

  // Crawl everything once, then hammer a hot set.
  std::uint64_t bytes = 0;
  std::size_t rr = 0;
  for (cache::FileId f = 0; f < storage->file_count(); ++f) {
    bytes += cluster.read(static_cast<cache::NodeId>(rr++ % nodes), f).size();
  }
  const auto hot = std::min<std::size_t>(10, storage->file_count());
  for (int round = 0; round < 5; ++round) {
    for (cache::FileId f = 0; f < hot; ++f) {
      cluster.read(static_cast<cache::NodeId>(rr++ % nodes), f);
    }
  }

  const auto s = cluster.stats();
  std::cout << "served " << util::human_bytes(bytes) << " (crawl) + " << hot
            << "-file hot set x5\n"
            << "local hits " << util::percent(s.local_hit_rate())
            << ", remote hits " << util::percent(s.remote_hit_rate())
            << ", storage reads " << s.disk_reads << "\n";
  for (cache::NodeId n = 0; n < nodes; ++n) {
    std::cout << "  node " << n << ": "
              << util::human_bytes(cluster.cached_bytes(n)) << " cached\n";
  }
  return 0;
}
