// sim_playground: run a single cluster simulation from the command line and
// print every collected metric. Useful for exploring configurations beyond
// the paper's figures.
//
//   sim_playground --trace=rutgers --system=cc-nem --nodes=8 --mem-mb=64
//                  --requests=100000 --clients=128  (one line)
//
// Systems: l2s | cc-basic | cc-sched | cc-nem
#include <chrono>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

coop::server::SystemKind parse_system(const std::string& name) {
  if (name == "l2s") return coop::server::SystemKind::kL2S;
  if (name == "cc-basic") return coop::server::SystemKind::kCcBasic;
  if (name == "cc-sched") return coop::server::SystemKind::kCcSched;
  if (name == "cc-nem") return coop::server::SystemKind::kCcNem;
  throw std::invalid_argument("unknown system: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const coop::util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto system = parse_system(flags.get("system", "cc-nem"));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 64));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 0));

  const auto trace = coop::harness::load_trace(trace_name, requests);
  auto config = coop::harness::figure_config(system, nodes,
                                             mem_mb * 1024 * 1024);
  if (flags.has("clients")) {
    config.clients.clients =
        static_cast<std::size_t>(flags.get_int("clients", 64));
  }
  config.tcp_handoff = flags.get_bool("handoff", true);
  if (flags.get_bool("hinted", false)) {
    config.directory = coop::cache::DirectoryMode::kHinted;
  }

  std::cout << "trace=" << trace_name << " files=" << trace.files.count()
            << " requests=" << trace.requests.size() << " system="
            << coop::server::to_string(system) << " nodes=" << nodes
            << " mem=" << mem_mb << "MB clients=" << config.clients.clients
            << "\n";

  const auto wall0 = std::chrono::steady_clock::now();
  const auto m = coop::server::run_simulation(config, trace);
  const auto wall1 = std::chrono::steady_clock::now();

  using coop::util::fixed;
  using coop::util::percent;
  std::cout << "throughput:      " << fixed(m.throughput_rps, 1) << " req/s ("
            << fixed(m.throughput_mbps, 1) << " MB/s)\n"
            << "response:        mean " << fixed(m.mean_response_ms, 2)
            << " ms, p50 " << fixed(m.p50_response_ms, 2) << ", p95 "
            << fixed(m.p95_response_ms, 2) << ", p99 "
            << fixed(m.p99_response_ms, 2) << "\n"
            << "hit rates:       local " << percent(m.local_hit_rate)
            << ", remote " << percent(m.remote_hit_rate) << ", global "
            << percent(m.global_hit_rate()) << "\n"
            << "utilization:     cpu " << percent(m.cpu_utilization)
            << ", disk " << percent(m.disk_utilization) << " (max "
            << percent(m.max_disk_utilization) << "), nic "
            << percent(m.nic_utilization) << ", router "
            << percent(m.router_utilization) << "\n"
            << "ops:             disk reads " << m.disk_block_reads
            << " (seeks " << m.disk_seeks << "), remote fetches "
            << m.remote_block_fetches << ", forwards " << m.master_forwards
            << ", replications " << m.replications << ", handoffs "
            << m.handoffs << "\n"
            << "simulated:       " << fixed(m.duration_ms / 1000.0, 2)
            << " s for " << m.requests << " measured requests; wall "
            << std::chrono::duration_cast<std::chrono::milliseconds>(wall1 -
                                                                     wall0)
                   .count()
            << " ms\n";
  return 0;
}
