// kv_store: a small replicated key-value lookup service built on the
// middleware — the paper's "building block for diverse services" claim in
// action (the same layer that served web pages serves point lookups).
//
// Values live in writable storage as fixed-slot records; keys hash to
// (file, offset) slots. GETs are read_range calls through round-robin nodes,
// PUTs go through the write protocol (peer invalidation + owner migration).
//
//   kv_store [--keys=10000] [--ops=50000] [--value-bytes=256] [--nodes=4]
//            [--mem-kb=1024] [--put-frac=0.1] [--threads=4]
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "sim/random.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

constexpr std::size_t kSlotsPerFile = 1024;

struct Slot {
  coop::cache::FileId file;
  std::uint64_t offset;
};

Slot slot_of(std::uint64_t key, std::uint32_t value_bytes) {
  return Slot{static_cast<coop::cache::FileId>(key / kSlotsPerFile),
              (key % kSlotsPerFile) * value_bytes};
}

/// Deterministic value content for verification: byte j of key k's current
/// version v.
std::vector<std::byte> make_value(std::uint64_t key, std::uint32_t version,
                                  std::uint32_t value_bytes) {
  std::vector<std::byte> v(value_bytes);
  for (std::uint32_t j = 0; j < value_bytes; ++j) {
    v[j] = static_cast<std::byte>((key * 31 + version * 7 + j) & 0xFF);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const auto keys = static_cast<std::uint64_t>(flags.get_int("keys", 10000));
  const auto ops = static_cast<std::size_t>(flags.get_int("ops", 50000));
  const auto value_bytes =
      static_cast<std::uint32_t>(flags.get_int("value-bytes", 256));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  const auto mem =
      static_cast<std::uint64_t>(flags.get_int("mem-kb", 1024)) * 1024;
  const double put_frac = flags.get_double("put-frac", 0.1);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 4));

  const auto nfiles = (keys + kSlotsPerFile - 1) / kSlotsPerFile;
  std::vector<std::uint32_t> sizes(
      nfiles, static_cast<std::uint32_t>(kSlotsPerFile * value_bytes));
  auto storage = std::make_shared<ccm::BufferStorage>(sizes);

  // Seed every key at version 0.
  for (std::uint64_t k = 0; k < keys; ++k) {
    const auto s = slot_of(k, value_bytes);
    storage->write(s.file, s.offset, make_value(k, 0, value_bytes));
  }

  ccm::CcmConfig config;
  config.nodes = nodes;
  config.capacity_bytes = mem;
  ccm::CcmCluster cluster(config, storage);

  // Per-key version counters (atomic; readers accept any version >= what
  // they last saw, here we simply verify the value matches SOME version by
  // structure: check the first byte family).
  std::vector<std::atomic<std::uint32_t>> version(keys);
  std::atomic<std::uint64_t> gets{0}, puts{0}, bad{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      sim::Rng rng(900 + t);
      const sim::ZipfSampler zipf(keys, 0.9);
      std::size_t rr = t;
      for (std::size_t i = 0; i < ops / threads; ++i) {
        const std::uint64_t key = zipf.sample(rng);
        const auto s = slot_of(key, value_bytes);
        const auto via = static_cast<cache::NodeId>(rr++ % nodes);
        if (rng.uniform() < put_frac) {
          const auto v = version[key].fetch_add(1) + 1;
          cluster.write(via, s.file, s.offset,
                        make_value(key, v, value_bytes));
          ++puts;
        } else {
          const auto got =
              cluster.read_range(via, s.file, s.offset, value_bytes);
          // Verify the value is a coherent version of this key: recompute
          // from byte 0's implied version.
          bool ok = got.size() == value_bytes;
          if (ok) {
            bool matched = false;
            const auto v_now = version[key].load();
            for (std::uint32_t v = v_now >= 4 ? v_now - 4 : 0;
                 v <= v_now + 1 && !matched; ++v) {
              matched = got == make_value(key, v, value_bytes);
            }
            ok = matched;
          }
          if (!ok) ++bad;
          ++gets;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  const auto s = cluster.stats();
  std::cout << "kv_store: " << keys << " keys x " << value_bytes
            << " B on " << nodes << " nodes x " << util::human_bytes(mem)
            << "\n"
            << gets.load() << " GETs + " << puts.load() << " PUTs in "
            << util::fixed(secs, 2) << " s ("
            << util::fixed(static_cast<double>(gets + puts) / secs, 0)
            << " ops/s), torn/stale reads: " << bad.load() << "\n"
            << "cache: local " << util::percent(s.local_hit_rate())
            << ", remote " << util::percent(s.remote_hit_rate())
            << ", storage reads " << s.disk_reads << ", invalidations "
            << s.invalidations << ", owner moves " << s.ownership_migrations
            << "\n";
  return bad.load() == 0 ? 0 : 1;
}
