// Quickstart: embed the cooperative caching middleware in ten lines.
//
// Builds a 4-node in-process cluster over synthetic storage, reads a few
// files through different nodes, and shows how the cache reacts (disk reads
// -> remote hits -> local hits).
#include <cstddef>
#include <iostream>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "util/format.hpp"

int main() {
  using namespace coop;

  // 1. Describe the cluster: 4 nodes, 1 MiB of cache memory each.
  ccm::CcmConfig config;
  config.nodes = 4;
  config.capacity_bytes = 1 << 20;
  config.policy = cache::Policy::kNeverEvictMaster;  // the paper's CC-NEM

  // 2. Plug in storage. MemStorage fakes 16 files (64 KiB each); swap in
  //    ccm::FileStorage to serve a real directory tree.
  std::vector<std::uint32_t> sizes(16, 64 * 1024);
  auto storage = std::make_shared<ccm::MemStorage>(std::move(sizes));

  // 3. Start the cluster (node worker threads spin up here).
  ccm::CcmCluster cluster(config, storage);

  // 4. Read through any node; the middleware finds the bytes wherever they
  //    are cheapest: local memory, a peer's memory, or storage.
  const auto a = cluster.read(/*via=*/0, /*file=*/7);  // disk -> node 0
  const auto b = cluster.read(/*via=*/2, /*file=*/7);  // peer fetch from 0
  const auto c = cluster.read(/*via=*/2, /*file=*/7);  // local hit on 2
  std::cout << "read " << a.size() << " bytes three times (identical: "
            << std::boolalpha << (a == b && b == c) << ")\n";

  // 5. Inspect what happened.
  const auto s = cluster.stats();
  std::cout << "block accesses: " << s.block_accesses()
            << "  local hits: " << s.local_hits
            << "  remote hits: " << s.remote_hits
            << "  disk reads: " << s.disk_reads << "\n";
  for (cache::NodeId n = 0; n < 4; ++n) {
    std::cout << "node " << n << " caches "
              << util::human_bytes(cluster.cached_bytes(n)) << "\n";
  }
  return 0;
}
