// ccm-lint CLI. Scans the repository for determinism/protocol hazards the
// compiler cannot see (see lint.hpp for the rule catalogue).
//
// Usage:
//   ccm-lint --root=<repo> [--suppressions=<file>] [--list-rules] [--verbose]
//            [--fix]
//
// --fix auto-rewrites unsuppressed cout-library `cout` findings to the
// coop::util::report_out() sink (inserting its include) and writes the files
// back, then re-lints; printf/puts are reported but left for a human.
//
// Exit status: 0 when every finding is suppressed, 1 when unsuppressed
// findings remain, 2 on usage/IO errors. File discovery is sorted so output
// order (and therefore CI logs) is deterministic.
#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

const std::vector<std::string> kScanDirs = {"src", "bench", "tests", "tools",
                                            "examples"};

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

std::string slurp(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

std::string rel_path(const fs::path& root, const fs::path& p) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string supp_arg;
  bool verbose = false;
  bool explain_taint = false;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--root=", 0) == 0) {
      root_arg = a.substr(7);
    } else if (a.rfind("--suppressions=", 0) == 0) {
      supp_arg = a.substr(15);
    } else if (a == "--list-rules") {
      for (const auto& r : ccmlint::rule_ids()) std::cout << r << "\n";
      return 0;
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a == "--explain-taint") {
      verbose = true;
      explain_taint = true;
    } else if (a == "--fix") {
      fix = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: ccm-lint --root=<repo> [--suppressions=<file>] "
                   "[--list-rules] [--verbose] [--fix]\n";
      return 0;
    } else {
      std::cerr << "ccm-lint: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << "ccm-lint: --root=<repo> is required\n";
    return 2;
  }
  const fs::path root(root_arg);
  if (!fs::is_directory(root)) {
    std::cerr << "ccm-lint: not a directory: " << root_arg << "\n";
    return 2;
  }

  // Collect files, sorted for deterministic reporting.
  std::vector<fs::path> paths;
  for (const auto& dir : kScanDirs) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<ccmlint::SourceFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    bool ok = false;
    std::string content = slurp(p, ok);
    if (!ok) {
      std::cerr << "ccm-lint: cannot read " << p << "\n";
      return 2;
    }
    files.push_back({rel_path(root, p), std::move(content)});
  }

  std::vector<ccmlint::Suppression> suppressions;
  if (!supp_arg.empty()) {
    bool ok = false;
    const std::string text = slurp(fs::path(supp_arg), ok);
    if (!ok) {
      std::cerr << "ccm-lint: cannot read suppressions file " << supp_arg
                << "\n";
      return 2;
    }
    std::vector<std::string> errors;
    suppressions = ccmlint::parse_suppressions(text, errors);
    if (!errors.empty()) {
      for (const auto& e : errors) std::cerr << "ccm-lint: " << e << "\n";
      return 2;
    }
  }

  ccmlint::Result result = ccmlint::lint(files, suppressions);

  if (fix) {
    std::size_t fixed_files = 0;
    std::size_t rewrites = 0;
    std::size_t unfixable = 0;
    for (auto& f : files) {
      const ccmlint::FixResult fr =
          ccmlint::fix_cout_library(f, result.findings);
      unfixable += fr.unfixable;
      if (fr.rewrites == 0) continue;
      std::ofstream outf(root / f.path, std::ios::binary);
      if (!outf) {
        std::cerr << "ccm-lint: cannot write " << f.path << "\n";
        return 2;
      }
      outf << fr.content;
      f.content = fr.content;
      ++fixed_files;
      rewrites += fr.rewrites;
    }
    std::cerr << "ccm-lint: --fix rewrote " << rewrites << " 'cout' use(s) in "
              << fixed_files << " file(s)";
    if (unfixable > 0) {
      std::cerr << "; " << unfixable
                << " cout-library finding(s) need a by-hand rewrite";
    }
    std::cerr << "\n";
    // Re-lint the (possibly rewritten) corpus so the report and exit status
    // reflect the post-fix state; reset use counts to avoid double-counting.
    for (auto& s : suppressions) s.uses = 0;
    result = ccmlint::lint(files, suppressions);
  }

  if (explain_taint) {
    std::cerr << "ccm-lint: unordered aliases:";
    for (const auto& a : result.aliases) std::cerr << " " << a;
    std::cerr << "\nccm-lint: tainted names:";
    for (const auto& t : result.tainted) std::cerr << " " << t;
    std::cerr << "\n";
  }

  for (const auto& f : result.findings) {
    if (f.suppressed && !verbose) continue;
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << (f.suppressed ? "  (suppressed)" : "") << "\n";
  }
  for (const auto& s : suppressions) {
    if (s.uses == 0) {
      std::cerr << "ccm-lint: stale suppression (matched nothing): "
                << s.path_substr << " " << s.rule << " " << s.token << "\n";
    }
  }

  std::cerr << "ccm-lint: scanned " << result.files_scanned << " files, "
            << result.unsuppressed << " finding(s), " << result.suppressed
            << " suppressed\n";
  const bool stale = std::any_of(suppressions.begin(), suppressions.end(),
                                 [](const auto& s) { return s.uses == 0; });
  return (result.unsuppressed == 0 && !stale) ? 0 : 1;
}
