#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace ccmlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::array<const char*, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::array<const char*, 5> kRandCalls = {"rand", "srand", "drand48",
                                               "lrand48", "mrand48"};
const std::array<const char*, 7> kRandTypes = {
    "random_device", "mt19937",      "mt19937_64",          "minstd_rand",
    "minstd_rand0",  "ranlux24_base", "default_random_engine"};

const std::array<const char*, 8> kClockTokens = {
    "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
    "clock_gettime", "localtime",   "gmtime",                "mktime"};
const std::array<const char*, 2> kClockCalls = {"time", "clock"};

const std::array<const char*, 3> kPrintTokens = {"cout", "printf", "puts"};

// blocking-under-lock vocabulary.
const std::array<const char*, 6> kGuardTypes = {
    "lock_guard", "scoped_lock", "unique_lock",
    "shared_lock", "ScopedLock",  "UniqueLock"};
const std::array<const char*, 6> kBlockingMembers = {
    "send", "send_for", "receive", "receive_for", "call", "wait_ready"};
const std::array<const char*, 2> kSleepCalls = {"sleep_for", "sleep_until"};
const std::array<const char*, 3> kStorageReceivers = {"storage_", "storage",
                                                      "writable"};

// raw-mutex vocabulary: std:: lock types that bypass the annotated wrappers.
const std::array<const char*, 4> kRawMutexTypes = {
    "mutex", "timed_mutex", "recursive_mutex", "shared_mutex"};

struct Token {
  std::string text;
  std::size_t pos;  // offset in stripped text
};

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (ident_start(code[i])) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      out.push_back({code.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<std::size_t>(it - starts.begin());  // 1-based
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

/// Advances past a balanced <...> group starting at `i` (s[i] == '<').
/// Returns the index just past the matching '>'.
std::size_t skip_angles(const std::string& s, std::size_t i) {
  int depth = 0;
  while (i < s.size()) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    ++i;
  }
  return i;
}

bool preceded_by_member_access(const std::string& s, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1]))) --i;
  if (i >= 1 && s[i - 1] == '.') return true;
  if (i >= 2 && s[i - 2] == '-' && s[i - 1] == '>') return true;
  return false;
}

/// True when the token at `pos` is written `std :: <token>` (whole-token
/// `std`), so `#include <mutex>` and unqualified member names don't match.
bool preceded_by_std_qualifier(const std::string& s, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1]))) --i;
  if (i < 2 || s[i - 1] != ':' || s[i - 2] != ':') return false;
  std::size_t j = i - 2;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
  if (j < 3 || s.compare(j - 3, 3, "std") != 0) return false;
  return j == 3 || !ident_char(s[j - 4]);
}

template <typename Seq>
bool contains(const Seq& seq, const std::string& t) {
  return std::find(std::begin(seq), std::end(seq), t) != std::end(seq);
}

/// Names tainted within one visibility domain.
struct Scope {
  std::set<std::string> tainted;     // variables holding/containing unordered
  std::set<std::string> float_vars;  // identifiers declared float/double
};

/// Header declarations (members, params of inline helpers) are visible
/// corpus-wide; .cpp declarations and auto bindings stay file-local so a
/// test's `auto r = ...` cannot taint an unrelated file's `r`.
struct Corpus {
  std::set<std::string> aliases;  // type names resolving to unordered
  Scope global;
  std::map<std::string, Scope> local;  // keyed by file path
};

bool is_header_path(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

bool name_tainted(const Corpus& c, const Scope& local, const std::string& t) {
  return c.global.tainted.count(t) > 0 || local.tainted.count(t) > 0;
}

bool name_float(const Corpus& c, const Scope& local, const std::string& t) {
  return c.global.float_vars.count(t) > 0 || local.float_vars.count(t) > 0;
}

bool is_unordered_type_token(const Corpus& c, const std::string& t) {
  return contains(kUnorderedTypes, t) || c.aliases.count(t) > 0;
}

/// From an unordered-type anchor token, extracts and taints the declared
/// name, handling qualified tails (::iterator), pointers/refs, and anchors
/// nested inside an enclosing template argument list
/// (std::vector<Store> stores_). A declarator followed by '(' is a function
/// returning the unordered type by value; tainting its *name* makes both
/// `auto r = make_index();` and `for (auto& kv : make_index())` visible.
void taint_from_anchor(const std::string& code, const Token& tok,
                       Scope& scope) {
  std::size_t i = tok.pos + tok.text.size();
  i = skip_spaces(code, i);
  if (i < code.size() && code[i] == '<') i = skip_angles(code, i);
  // Escape enclosing template argument lists: vector<Store>, map<K, Store>.
  for (;;) {
    i = skip_spaces(code, i);
    if (i < code.size() && (code[i] == ',' || code[i] == '>')) {
      int depth = 1;
      while (i < code.size() && depth > 0) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') --depth;
        ++i;
      }
      continue;
    }
    break;
  }
  // Qualified tail / cv / ref / ptr, then the declarator name.
  for (;;) {
    i = skip_spaces(code, i);
    if (i + 1 < code.size() && code[i] == ':' && code[i + 1] == ':') {
      i = skip_spaces(code, i + 2);
      while (i < code.size() && ident_char(code[i])) ++i;
      continue;
    }
    if (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      ++i;
      continue;
    }
    if (i < code.size() && ident_start(code[i])) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      const std::string name = code.substr(i, j - i);
      if (name == "const" || name == "constexpr" || name == "static" ||
          name == "mutable" || name == "inline") {
        i = j;
        continue;
      }
      const std::size_t after = skip_spaces(code, j);
      if (after < code.size() &&
          (code[after] == ';' || code[after] == '=' || code[after] == '{' ||
           code[after] == ',' || code[after] == ')' ||
           code[after] == '(')) {
        scope.tainted.insert(name);
      }
    }
    break;
  }
}

void collect_aliases(const std::string& code, const std::vector<Token>& toks,
                     Corpus& corpus) {
  for (std::size_t t = 0; t + 1 < toks.size(); ++t) {
    if (toks[t].text != "using") continue;
    const Token& name = toks[t + 1];
    std::size_t i = skip_spaces(code, name.pos + name.text.size());
    if (i >= code.size() || code[i] != '=') continue;
    const std::size_t end = code.find(';', i);
    const std::string rhs =
        code.substr(i, end == std::string::npos ? std::string::npos : end - i);
    for (const auto& ut : kUnorderedTypes) {
      if (rhs.find(ut) != std::string::npos) {
        corpus.aliases.insert(name.text);
        break;
      }
    }
    for (const auto& alias : corpus.aliases) {
      // Alias-of-alias: require a whole-token match.
      std::size_t p = rhs.find(alias);
      while (p != std::string::npos) {
        const bool lb = p == 0 || !ident_char(rhs[p - 1]);
        const bool rb =
            p + alias.size() >= rhs.size() || !ident_char(rhs[p + alias.size()]);
        if (lb && rb) {
          corpus.aliases.insert(name.text);
          break;
        }
        p = rhs.find(alias, p + 1);
      }
    }
  }
}

void collect_declared(const std::string& code, const std::vector<Token>& toks,
                      const Corpus& corpus, Scope& scope) {
  for (const auto& tok : toks) {
    if (is_unordered_type_token(corpus, tok.text)) {
      taint_from_anchor(code, tok, scope);
    }
    if (tok.text == "double" || tok.text == "float") {
      std::size_t i = skip_spaces(code, tok.pos + tok.text.size());
      if (i < code.size() && ident_start(code[i])) {
        std::size_t j = i + 1;
        while (j < code.size() && ident_char(code[j])) ++j;
        const std::size_t after = skip_spaces(code, j);
        if (after < code.size() &&
            (code[after] == ';' || code[after] == '=' || code[after] == ',' ||
             code[after] == ')' || code[after] == '{')) {
          scope.float_vars.insert(code.substr(i, j - i));
        }
      }
    }
  }
}

/// `auto x = expr;` / `auto& x = expr;` — taints x when expr is rooted at a
/// tainted name (`auto& s = stores_[n];`, `auto it = map_.find(k);`). Only
/// the first rhs token counts: a tainted name passed as a mere argument
/// (`auto r = touch(cc, map_)`) does not make the result unordered.
/// Iterated to fixpoint by the caller running it twice.
void collect_auto_bindings(const std::string& code,
                           const std::vector<Token>& toks,
                           const Corpus& corpus, Scope& scope) {
  for (std::size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].text != "auto") continue;
    std::size_t i = skip_spaces(code, toks[t].pos + 4);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) ++i;
    i = skip_spaces(code, i);
    if (i >= code.size() || !ident_start(code[i])) continue;
    std::size_t j = i + 1;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string name = code.substr(i, j - i);
    std::size_t eq = skip_spaces(code, j);
    if (eq >= code.size() || code[eq] != '=') continue;
    const std::size_t end = code.find(';', eq);
    if (end == std::string::npos) continue;
    const auto rhs_toks = tokenize(code.substr(eq + 1, end - eq - 1));
    if (!rhs_toks.empty() &&
        name_tainted(corpus, scope, rhs_toks.front().text)) {
      scope.tainted.insert(name);
    }
  }
}

struct InlineAllows {
  // line (1-based) -> rules allowed on that line
  std::map<std::size_t, std::set<std::string>> by_line;

  bool allows(std::size_t line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

InlineAllows collect_inline_allows(const std::string& raw) {
  InlineAllows allows;
  std::istringstream in(raw);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t mark = line.find("ccm-lint: allow(");
    if (mark == std::string::npos) continue;
    std::size_t i = mark + 16;
    const std::size_t close = line.find(')', i);
    if (close == std::string::npos) continue;
    std::string rules = line.substr(i, close - i);
    std::istringstream rs(rules);
    std::string rule;
    while (std::getline(rs, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) {
        allows.by_line[lineno].insert(rule.substr(b, e - b + 1));
      }
    }
  }
  return allows;
}

struct FileScan {
  const SourceFile* file;
  std::string code;  // stripped
  std::vector<Token> tokens;
  std::vector<std::size_t> lines;
  InlineAllows allows;
};

void add_finding(std::vector<Finding>& out, const FileScan& fs,
                 std::size_t pos, const std::string& rule,
                 const std::string& token, const std::string& message) {
  const std::size_t line = line_of(fs.lines, pos);
  if (fs.allows.allows(line, rule)) return;
  out.push_back({fs.file->path, line, rule, token, message, false});
}

/// Range-for headers: returns (colon position, range-expression substring,
/// body span) for `for (`...` : `...`)`. The body span is used by the
/// fp-accum rule.
struct RangeFor {
  std::size_t for_pos;
  std::string range_expr;
  std::size_t body_begin;
  std::size_t body_end;
};

std::vector<RangeFor> find_range_fors(const std::string& code,
                                      const std::vector<Token>& toks) {
  std::vector<RangeFor> out;
  for (const auto& tok : toks) {
    if (tok.text != "for") continue;
    std::size_t i = skip_spaces(code, tok.pos + 3);
    if (i >= code.size() || code[i] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = i; j < code.size(); ++j) {
      if (code[j] == '(') ++depth;
      if (code[j] == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (code[j] == ';' && depth == 1) break;  // classic for, not range
      if (code[j] == ':' && depth == 1 && colon == std::string::npos) {
        const bool dbl = (j + 1 < code.size() && code[j + 1] == ':') ||
                         (j > 0 && code[j - 1] == ':');
        if (!dbl) colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    RangeFor rf;
    rf.for_pos = tok.pos;
    rf.range_expr = code.substr(colon + 1, close - colon - 1);
    std::size_t b = skip_spaces(code, close + 1);
    if (b < code.size() && code[b] == '{') {
      int braces = 0;
      std::size_t e = b;
      for (; e < code.size(); ++e) {
        if (code[e] == '{') ++braces;
        if (code[e] == '}') {
          --braces;
          if (braces == 0) break;
        }
      }
      rf.body_begin = b;
      rf.body_end = e;
    } else {
      rf.body_begin = b;
      const std::size_t semi = code.find(';', b);
      rf.body_end = semi == std::string::npos ? code.size() : semi;
    }
    out.push_back(std::move(rf));
  }
  return out;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool path_starts_with(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

}  // namespace

std::string strip_code(const std::string& src) {
  std::string out = src;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          const std::size_t open = src.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim.assign(1, ')');
            raw_delim.append(src, i + 2, open - i - 2);
            raw_delim.push_back('"');
            state = State::kRawString;
            out[i] = ' ';
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(
                                                src[i - 1])))) {
          // skip digit separators like 1'000'000
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < src.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Suppression> parse_suppressions(const std::string& text,
                                            std::vector<std::string>& errors) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string reason;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      reason = line.substr(hash + 1);
      const auto b = reason.find_first_not_of(" \t");
      reason = b == std::string::npos ? "" : reason.substr(b);
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    std::string path, rule, token;
    if (!(fields >> path)) continue;  // blank / comment-only line
    if (!(fields >> rule >> token)) {
      errors.push_back("suppressions line " + std::to_string(lineno) +
                       ": expected `path rule token  # reason`");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      errors.push_back("suppressions line " + std::to_string(lineno) +
                       ": trailing field '" + extra + "'");
      continue;
    }
    if (reason.empty()) {
      errors.push_back("suppressions line " + std::to_string(lineno) +
                       ": missing `# justification`");
      continue;
    }
    out.push_back({path, rule, token, reason, 0});
  }
  return out;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kRules = {
      "unordered-iter",      "raw-random", "wall-clock",
      "fp-accum-unordered",  "cout-library",
      "blocking-under-lock", "raw-mutex"};
  return kRules;
}

FixResult fix_cout_library(const SourceFile& file,
                           const std::vector<Finding>& findings) {
  FixResult out;
  out.content = file.content;

  // Lines with an unsuppressed `cout` finding for this file.
  std::set<std::size_t> flagged;
  for (const auto& f : findings) {
    if (f.path != file.path || f.rule != "cout-library" || f.suppressed) {
      continue;
    }
    if (f.token == "cout") {
      flagged.insert(f.line);
    } else {
      ++out.unfixable;  // printf/puts need a by-hand stream rewrite
    }
  }
  if (flagged.empty()) return out;

  // strip_code preserves length and newlines, so stripped offsets are valid
  // in the raw bytes — edits computed on the stripped view apply directly.
  const std::string code = strip_code(file.content);
  const auto lines = line_starts(code);
  const auto tokens = tokenize(code);

  struct Edit {
    std::size_t begin;
    std::size_t end;
    std::string text;
  };
  std::vector<Edit> edits;

  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const Token& tok = tokens[t];
    if (tok.text != "cout") continue;
    if (flagged.count(line_of(lines, tok.pos)) == 0) continue;

    // Extend the span over a preceding `std ::` qualifier.
    std::size_t begin = tok.pos;
    std::size_t i = tok.pos;
    while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
    if (i >= 2 && code[i - 1] == ':' && code[i - 2] == ':') {
      std::size_t j = i - 2;
      while (j > 0 && std::isspace(static_cast<unsigned char>(code[j - 1]))) {
        --j;
      }
      if (j >= 3 && code.compare(j - 3, 3, "std") == 0 &&
          (j == 3 || !ident_char(code[j - 4]))) {
        begin = j - 3;
      }
    }

    // `using std::cout;` is a declaration, not a stream expression — a
    // mechanical swap would produce `using coop::util::report_out();`.
    std::size_t prev = t;
    if (t > 0 && tokens[t - 1].text == "std" && tokens[t - 1].pos == begin) {
      prev = t - 1;
    }
    if (prev > 0 && tokens[prev - 1].text == "using") {
      ++out.unfixable;
      continue;
    }

    edits.push_back({begin, tok.pos + 4, "coop::util::report_out()"});
  }
  out.rewrites = edits.size();
  if (edits.empty()) return out;

  // Insert the sink include after the last include line, unless present.
  if (file.content.find("util/report_sink.hpp") == std::string::npos) {
    std::size_t insert_at = 0;
    bool found = false;
    for (const std::size_t s : lines) {
      if (code.compare(s, 8, "#include") == 0) {
        const std::size_t eol = code.find('\n', s);
        insert_at = eol == std::string::npos ? code.size() : eol + 1;
        found = true;
      }
    }
    edits.push_back({insert_at, insert_at,
                     found ? "#include \"util/report_sink.hpp\"\n"
                           : "#include \"util/report_sink.hpp\"\n\n"});
  }

  // Back-to-front so earlier offsets stay valid; at a shared offset the
  // rewrite goes first so the zero-width include insertion cannot be
  // clobbered by it.
  std::sort(edits.begin(), edits.end(), [](const Edit& a, const Edit& b) {
    if (a.begin != b.begin) return a.begin > b.begin;
    return a.end > b.end;
  });
  for (const auto& e : edits) {
    out.content.replace(e.begin, e.end - e.begin, e.text);
  }
  return out;
}

Result lint(const std::vector<SourceFile>& files,
            std::vector<Suppression>& suppressions) {
  Result result;
  result.files_scanned = files.size();

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const auto& f : files) {
    FileScan fs;
    fs.file = &f;
    fs.code = strip_code(f.content);
    fs.tokens = tokenize(fs.code);
    fs.lines = line_starts(fs.code);
    fs.allows = collect_inline_allows(f.content);
    scans.push_back(std::move(fs));
  }

  // Pass 1: taint collection. Aliases twice (alias-of-alias), then
  // declarations, then auto bindings twice (chained bindings). Header
  // declarations land in the corpus-global scope; .cpp declarations and
  // bindings stay file-local.
  Corpus corpus;
  for (int round = 0; round < 2; ++round) {
    for (const auto& fs : scans) collect_aliases(fs.code, fs.tokens, corpus);
  }
  const auto scope_for = [&corpus](const FileScan& fs) -> Scope& {
    return is_header_path(fs.file->path) ? corpus.global
                                         : corpus.local[fs.file->path];
  };
  for (const auto& fs : scans) {
    collect_declared(fs.code, fs.tokens, corpus, scope_for(fs));
  }
  for (int round = 0; round < 2; ++round) {
    for (const auto& fs : scans) {
      collect_auto_bindings(fs.code, fs.tokens, corpus, scope_for(fs));
    }
  }

  // Pass 2: rules.
  for (const auto& fs : scans) {
    const std::string& path = fs.file->path;
    const Scope& local = scope_for(fs);
    const bool rng_exempt = path_contains(path, "src/sim/random");

    // unordered-iter: range-for over a tainted range expression.
    const auto range_fors = find_range_fors(fs.code, fs.tokens);
    for (const auto& rf : range_fors) {
      std::string hit;
      for (const auto& tok : tokenize(rf.range_expr)) {
        if (contains(kUnorderedTypes, tok.text) ||
            name_tainted(corpus, local, tok.text)) {
          hit = tok.text;
          break;
        }
      }
      if (hit.empty()) continue;
      add_finding(result.findings, fs, rf.for_pos, "unordered-iter", hit,
                  "range-for over unordered container '" + hit +
                      "': iteration order is implementation-defined and must "
                      "not reach outputs, metrics, or eviction decisions");
      // fp-accum-unordered: float/double accumulation inside that loop body.
      const std::string body =
          fs.code.substr(rf.body_begin, rf.body_end - rf.body_begin);
      for (const auto& btok : tokenize(body)) {
        if (!name_float(corpus, local, btok.text)) continue;
        std::size_t a =
            skip_spaces(body, btok.pos + btok.text.size());
        if (a + 1 < body.size() &&
            (body[a] == '+' || body[a] == '-' || body[a] == '*') &&
            body[a + 1] == '=') {
          add_finding(
              result.findings, fs, rf.body_begin + btok.pos,
              "fp-accum-unordered", btok.text,
              "floating-point accumulation into '" + btok.text +
                  "' inside unordered iteration: FP addition is not "
                  "associative, so the sum depends on hash-map order; use an "
                  "index-keyed loop (see harness/executor)");
        }
      }
    }

    // unordered-iter: explicit iterator walks (X.begin(), X.cbegin()).
    for (std::size_t t = 0; t + 1 < fs.tokens.size(); ++t) {
      const Token& tok = fs.tokens[t];
      if (!name_tainted(corpus, local, tok.text)) continue;
      std::size_t i = skip_spaces(fs.code, tok.pos + tok.text.size());
      bool member = false;
      if (i < fs.code.size() && fs.code[i] == '.') {
        member = true;
        ++i;
      } else if (i + 1 < fs.code.size() && fs.code[i] == '-' &&
                 fs.code[i + 1] == '>') {
        member = true;
        i += 2;
      }
      if (!member) continue;
      i = skip_spaces(fs.code, i);
      const Token& next = fs.tokens[t + 1];
      if (next.pos == i && (next.text == "begin" || next.text == "cbegin")) {
        add_finding(result.findings, fs, tok.pos, "unordered-iter", tok.text,
                    "iterator walk over unordered container '" + tok.text +
                        "': iteration order is implementation-defined");
      }
    }

    for (const auto& tok : fs.tokens) {
      const std::size_t after = skip_spaces(fs.code, tok.pos + tok.text.size());
      const bool is_call = after < fs.code.size() && fs.code[after] == '(';
      const bool member = preceded_by_member_access(fs.code, tok.pos);

      // raw-random
      if (!rng_exempt) {
        if (is_call && !member && contains(kRandCalls, tok.text)) {
          add_finding(result.findings, fs, tok.pos, "raw-random", tok.text,
                      "raw '" + tok.text +
                          "' call: all workload randomness must flow through "
                          "the seeded coop::sim::Rng (src/sim/random.hpp)");
        }
        if (contains(kRandTypes, tok.text)) {
          add_finding(result.findings, fs, tok.pos, "raw-random", tok.text,
                      "'" + tok.text +
                          "': stdlib engines/distributions differ across "
                          "implementations; use coop::sim::Rng for "
                          "bit-identical traces");
        }
      }

      // wall-clock
      if (!rng_exempt) {
        if (contains(kClockTokens, tok.text)) {
          add_finding(result.findings, fs, tok.pos, "wall-clock", tok.text,
                      "wall-clock read '" + tok.text +
                          "': simulation time is logical; wall time may only "
                          "feed audited diagnostics");
        }
        if (is_call && !member && contains(kClockCalls, tok.text)) {
          add_finding(result.findings, fs, tok.pos, "wall-clock", tok.text,
                      "wall-clock call '" + tok.text +
                          "()': simulation time is logical; wall time may "
                          "only feed audited diagnostics");
        }
      }

      // cout-library
      if (path_starts_with(path, "src/")) {
        const bool banned_stream = tok.text == "cout";
        const bool banned_call =
            is_call && !member && (tok.text == "printf" || tok.text == "puts");
        if (banned_stream || banned_call) {
          add_finding(result.findings, fs, tok.pos, "cout-library", tok.text,
                      "'" + tok.text +
                          "' in library code: src/ must return data, not "
                          "print; route output through the report layer");
        }
      }

      // raw-mutex: std:: lock types spelled directly in the runtime layers.
      if ((path_contains(path, "src/ccm") || path_contains(path, "src/net")) &&
          contains(kRawMutexTypes, tok.text) &&
          preceded_by_std_qualifier(fs.code, tok.pos)) {
        add_finding(result.findings, fs, tok.pos, "raw-mutex", tok.text,
                    "raw 'std::" + tok.text +
                        "' in runtime code: locks in src/ccm and src/net "
                        "must be coop::util::Mutex / CountingMutex "
                        "(src/util/mutex.hpp) so they carry thread-safety "
                        "annotations and register with the lock-order "
                        "watchdog");
      }
    }

    // blocking-under-lock: blocking waits inside a lock-guard scope. The
    // scope runs from the guard declaration to the enclosing block's `}`;
    // `guard.unlock()` suspends it and `guard.lock()` resumes it (the
    // make_room_locked hand-off pattern).
    if (path_starts_with(path, "src/")) {
      std::set<std::size_t> flagged;  // dedupe across nested guard scopes
      for (std::size_t t = 0; t < fs.tokens.size(); ++t) {
        const Token& gtok = fs.tokens[t];
        if (!contains(kGuardTypes, gtok.text)) continue;
        std::size_t i = skip_spaces(fs.code, gtok.pos + gtok.text.size());
        if (i < fs.code.size() && fs.code[i] == '<') {
          i = skip_angles(fs.code, i);
        }
        i = skip_spaces(fs.code, i);
        if (i >= fs.code.size() || !ident_start(fs.code[i])) continue;
        std::size_t j = i + 1;
        while (j < fs.code.size() && ident_char(fs.code[j])) ++j;
        const std::string guard = fs.code.substr(i, j - i);
        const std::size_t k = skip_spaces(fs.code, j);
        // A declaration constructs the guard; a `&` parameter or a bare
        // mention does not open a scope here.
        if (k >= fs.code.size() || (fs.code[k] != '(' && fs.code[k] != '{')) {
          continue;
        }
        const std::size_t decl_end = fs.code.find(';', k);
        if (decl_end == std::string::npos) continue;
        std::size_t scope_end = fs.code.size();
        int depth = 0;
        for (std::size_t p = decl_end; p < fs.code.size(); ++p) {
          if (fs.code[p] == '{') {
            ++depth;
          } else if (fs.code[p] == '}') {
            if (depth == 0) {
              scope_end = p;
              break;
            }
            --depth;
          }
        }
        bool suspended = false;
        for (std::size_t u = t + 1; u < fs.tokens.size(); ++u) {
          const Token& bt = fs.tokens[u];
          if (bt.pos <= decl_end) continue;
          if (bt.pos >= scope_end) break;
          if (bt.text == guard && u + 1 < fs.tokens.size() &&
              preceded_by_member_access(fs.code, fs.tokens[u + 1].pos)) {
            if (fs.tokens[u + 1].text == "unlock") suspended = true;
            if (fs.tokens[u + 1].text == "lock") suspended = false;
            continue;
          }
          const std::size_t after =
              skip_spaces(fs.code, bt.pos + bt.text.size());
          if (suspended || after >= fs.code.size() || fs.code[after] != '(') {
            continue;
          }
          const bool member = preceded_by_member_access(fs.code, bt.pos);
          std::string what;
          if (member && contains(kBlockingMembers, bt.text)) {
            what = "blocking '." + bt.text + "(...)'";
          } else if (!member && bt.text == "rpc") {
            what = "blocking RPC 'rpc(...)'";
          } else if (contains(kSleepCalls, bt.text)) {
            what = "sleep '" + bt.text + "(...)'";
          } else if (member && (bt.text == "read" || bt.text == "write") &&
                     u > 0 &&
                     contains(kStorageReceivers, fs.tokens[u - 1].text)) {
            what = "storage I/O '" + fs.tokens[u - 1].text + "." + bt.text +
                   "(...)'";
          }
          if (what.empty() || !flagged.insert(bt.pos).second) continue;
          add_finding(result.findings, fs, bt.pos, "blocking-under-lock",
                      bt.text,
                      what + " while holding lock guard '" + guard +
                          "': a wait that can park the thread must not run "
                          "under a mutex; release the guard first or move "
                          "the wait out of the critical section");
        }
      }
    }
  }

  // Suppressions.
  for (auto& f : result.findings) {
    for (auto& s : suppressions) {
      if (f.rule != s.rule) continue;
      if (s.token != "*" && s.token != f.token) continue;
      if (f.path.find(s.path_substr) == std::string::npos) continue;
      f.suppressed = true;
      ++s.uses;
      break;
    }
    if (f.suppressed) {
      ++result.suppressed;
    } else {
      ++result.unsuppressed;
    }
  }
  result.aliases.assign(corpus.aliases.begin(), corpus.aliases.end());
  std::set<std::string> merged = corpus.global.tainted;
  for (const auto& [p, scope] : corpus.local) {
    merged.insert(scope.tainted.begin(), scope.tainted.end());
  }
  result.tainted.assign(merged.begin(), merged.end());
  return result;
}

}  // namespace ccmlint
