// ccm-lint — project-specific simulation-safety linter.
//
// The repository's headline guarantee is byte-for-byte deterministic figures
// (PR 1), and the protocol accounting behind Figures 2-6 must stay exact.
// General-purpose tools cannot see those contracts, so this linter enforces
// them lexically over src/, bench/, tests/, and tools/:
//
//   unordered-iter      iteration (range-for, .begin()) over a
//                       std::unordered_map/unordered_set — iteration order is
//                       implementation-defined, so any such loop that feeds
//                       CSV/JSON output, metrics, or eviction ordering breaks
//                       reproducibility. Flagged everywhere; audited
//                       order-insensitive sweeps are suppressed explicitly.
//   raw-random          rand()/srand()/std::mt19937/random_device & friends
//                       outside src/sim/random.* — all workload randomness
//                       must flow through the seeded, portable Rng.
//   wall-clock          time()/clock()/gettimeofday/std::chrono clocks
//                       outside src/sim/random.* — simulation time is
//                       logical; wall-clock reads are allowed only in audited
//                       diagnostics (suppression file).
//   fp-accum-unordered  float/double accumulation (+=, -=, *=) inside a loop
//                       that iterates an unordered container — combines FP
//                       non-associativity with unspecified order, the exact
//                       bug class the index-keyed executor was built to kill.
//   cout-library        std::cout / printf / puts in library code (src/) —
//                       libraries must return data, not print it; the
//                       report/CLI layers are audited exceptions.
//   blocking-under-lock blocking waits (Mailbox send/receive/*_for,
//                       Transport::call / rpc(), storage read/write I/O,
//                       this_thread sleeps) inside a lock-guard scope in
//                       src/ — a parked thread holding a mutex is the seed
//                       of every convoy and deadlock the runtime's lock
//                       discipline forbids. `guard.unlock()` suspends the
//                       scope, `guard.lock()` resumes it.
//   raw-mutex           a `std::mutex` (or timed/recursive/shared variant)
//                       spelled directly in src/ccm or src/net — runtime
//                       locks must be coop::util::Mutex/CountingMutex so
//                       they carry thread-safety annotations and register
//                       with the lock-order watchdog (src/util/lockcheck).
//
// The analysis is a two-pass lexical scan (no real parser): pass 1 collects
// unordered-container type aliases and variable names (with a simple taint
// propagation through `auto` bindings and containers-of-unordered); pass 2
// applies the rules. Heuristic by design — the suppression file
// (tools/lint/suppressions.txt) records every audited exception with its
// justification, and `// ccm-lint: allow(<rule>)` suppresses a single line.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ccmlint {

struct SourceFile {
  std::string path;     // repo-relative, '/'-separated
  std::string content;  // raw bytes
};

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string token;  // the offending identifier (suppression key)
  std::string message;
  bool suppressed = false;
};

/// One audited exception from the suppression file.
struct Suppression {
  std::string path_substr;  // matches if finding.path contains it
  std::string rule;
  std::string token;  // "*" matches any token
  std::string reason;
  std::size_t uses = 0;  // findings matched (unused entries are reported)
};

struct Result {
  std::vector<Finding> findings;  // all findings, suppressed ones marked
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  std::size_t unsuppressed = 0;
  // Pass-1 output, exposed for --explain-taint and the lint tests.
  std::vector<std::string> aliases;  // type names resolving to unordered
  std::vector<std::string> tainted;  // variable names holding/containing them
};

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved so line numbers survive). Handles raw strings.
std::string strip_code(const std::string& src);

/// Parses the suppression file format: one entry per line,
/// `path-substring rule token # justification`; '#' starts a comment; blank
/// lines ignored. Returns entries; on malformed lines appends to `errors`.
std::vector<Suppression> parse_suppressions(const std::string& text,
                                            std::vector<std::string>& errors);

/// Lints `files` as one corpus (tainted names are collected globally so a
/// member declared in a header is caught when iterated in a .cpp).
/// Suppressions are matched and their use counts updated.
Result lint(const std::vector<SourceFile>& files,
            std::vector<Suppression>& suppressions);

/// All rule ids, for --list-rules and tests.
const std::vector<std::string>& rule_ids();

/// Outcome of fix_cout_library on one file.
struct FixResult {
  std::string content;        // rewritten file bytes (== input when no-op)
  std::size_t rewrites = 0;   // `cout` references rewritten to report_out()
  std::size_t unfixable = 0;  // cout-library findings left for a human
};

/// Auto-fixes the cout-library rule: every unsuppressed `cout` finding in
/// `file` (taken from a prior lint() over the same contents) is rewritten
/// from `std::cout` / `cout` to `coop::util::report_out()`, and
/// `#include "util/report_sink.hpp"` is inserted after the file's last
/// include when anything was rewritten. printf/puts findings and
/// `using std::cout;` declarations are not mechanically fixable and are
/// counted in `unfixable`. Idempotent: fixing already-fixed content is a
/// no-op, since report_out() never trips the rule.
FixResult fix_cout_library(const SourceFile& file,
                           const std::vector<Finding>& findings);

}  // namespace ccmlint
