#!/usr/bin/env sh
# Runs the clang-tidy baseline (.clang-tidy) over the library and tools
# translation units, using the compile commands exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir must have been configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# Exits 0 with a notice when clang-tidy is not installed (the dev container
# ships only gcc; the clang-tidy CI job installs and runs it for real).
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (the CI job runs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# Library and tool sources only: tests/bench pull gtest/benchmark headers
# whose macro expansion drowns the signal; their logic is covered by the
# ctest suites and ccm-lint.
FILES=$(find src tools -name '*.cpp' | sort)

echo "run_clang_tidy: checking $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086  # word-splitting FILES is intended
clang-tidy -p "$BUILD_DIR" --quiet $FILES
echo "run_clang_tidy: clean"
