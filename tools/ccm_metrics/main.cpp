// ccm_metrics: offline aggregator for the runtime telemetry the cluster
// drivers dump per process.
//
// Two input shapes, freely mixed on the command line:
//   *.ccms   binary MetricsSnapshot dumps (ccm_node --metrics-out); merged
//            with MetricsSnapshot::merge into one cluster-wide snapshot
//   *.spans  text span logs (ccm_node --runtime-trace-out); concatenated
//            into one wall-clock Perfetto trace with cross-process flow
//            arrows (obs::runtime_trace_json)
//
// Inputs are sniffed by content (the snapshot magic), not by extension, so
// shell globs stay simple. Usage:
//
//   ccm_metrics [--json-out=PATH] [--trace-out=PATH] FILE...
//
// --json-out   merged metrics snapshot as JSON   (default: stdout)
// --trace-out  merged Perfetto trace JSON        (only with span inputs)
//
// Exit codes: 0 ok, 1 I/O or write failure, 2 usage / undecodable input.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/runtime_trace.hpp"
#include "proto/message.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

using namespace coop;

namespace {

const char* rpc_kind_name(std::uint8_t kind) {
  if (kind >= proto::kMsgKindCount) return "unknown-kind";
  return proto::kind_name(static_cast<proto::MsgKind>(kind));
}

std::optional<std::vector<std::byte>> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return std::vector<std::byte>(
      reinterpret_cast<const std::byte*>(raw.data()),
      reinterpret_cast<const std::byte*>(raw.data() + raw.size()));
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (flags.positionals().empty()) {
    std::cerr << "usage: ccm_metrics [--json-out=PATH] [--trace-out=PATH] "
                 "FILE...\n";
    return 2;
  }

  std::optional<obs::MetricsSnapshot> merged;
  std::set<std::uint32_t> hosts;  // same dedupe rule as the live scrape
  std::vector<obs::RuntimeSpan> spans;
  std::size_t snapshot_files = 0, span_files = 0;

  for (const std::string& path : flags.positionals()) {
    const auto bytes = slurp(path);
    if (!bytes) {
      std::cerr << "ccm_metrics: cannot read " << path << "\n";
      return 1;
    }
    if (auto snap = obs::MetricsSnapshot::decode(*bytes)) {
      ++snapshot_files;
      if (!hosts.insert(snap->host).second) continue;
      if (merged) {
        merged->merge(*snap);
      } else {
        merged = *snap;
      }
      continue;
    }
    const std::string_view text(reinterpret_cast<const char*>(bytes->data()),
                                bytes->size());
    if (obs::parse_span_log(text, spans)) {
      ++span_files;
      continue;
    }
    std::cerr << "ccm_metrics: " << path
              << " is neither a metrics snapshot nor a span log\n";
    return 2;
  }

  int rc = 0;
  if (merged) {
    util::JsonWriter j;
    j.begin_object();
    j.key("bench").value("ccm_metrics");
    j.key("inputs").value(static_cast<std::uint64_t>(snapshot_files));
    j.key("metrics");
    obs::metrics_json(j, *merged, &rpc_kind_name);
    j.end_object();
    const std::string path = flags.get("json-out");
    if (path.empty()) {
      std::cout << j.str() << "\n";
    } else if (!write_file(path, j.str() + "\n")) {
      std::cerr << "ccm_metrics: cannot write " << path << "\n";
      rc = 1;
    } else {
      std::cerr << "ccm_metrics: " << merged->processes << " process(es) -> "
                << path << "\n";
    }
  }

  if (flags.has("trace-out")) {
    if (spans.empty()) {
      std::cerr << "ccm_metrics: --trace-out needs at least one span-log "
                   "input\n";
      return 2;
    }
    const std::string path = flags.get("trace-out");
    if (!write_file(path, obs::runtime_trace_json(spans))) {
      std::cerr << "ccm_metrics: cannot write " << path << "\n";
      rc = 1;
    } else {
      std::cerr << "ccm_metrics: " << spans.size() << " span(s) from "
                << span_files << " log(s) -> " << path << "\n";
    }
  }

  if (!merged && !flags.has("trace-out")) {
    std::cerr << "ccm_metrics: no metrics snapshots among the inputs "
                 "(span logs need --trace-out)\n";
    return 2;
  }
  return rc;
}
