# Empty dependencies file for coop_server.
# This may be replaced when dependencies are built.
