file(REMOVE_RECURSE
  "CMakeFiles/coop_server.dir/server/ccm_server.cpp.o"
  "CMakeFiles/coop_server.dir/server/ccm_server.cpp.o.d"
  "CMakeFiles/coop_server.dir/server/client.cpp.o"
  "CMakeFiles/coop_server.dir/server/client.cpp.o.d"
  "CMakeFiles/coop_server.dir/server/cluster.cpp.o"
  "CMakeFiles/coop_server.dir/server/cluster.cpp.o.d"
  "CMakeFiles/coop_server.dir/server/l2s_server.cpp.o"
  "CMakeFiles/coop_server.dir/server/l2s_server.cpp.o.d"
  "libcoop_server.a"
  "libcoop_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
