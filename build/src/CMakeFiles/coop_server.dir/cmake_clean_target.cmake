file(REMOVE_RECURSE
  "libcoop_server.a"
)
