# Empty dependencies file for coop_sim.
# This may be replaced when dependencies are built.
