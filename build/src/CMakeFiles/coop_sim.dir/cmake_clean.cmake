file(REMOVE_RECURSE
  "CMakeFiles/coop_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/coop_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/coop_sim.dir/sim/random.cpp.o"
  "CMakeFiles/coop_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/coop_sim.dir/sim/service_center.cpp.o"
  "CMakeFiles/coop_sim.dir/sim/service_center.cpp.o.d"
  "CMakeFiles/coop_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/coop_sim.dir/sim/stats.cpp.o.d"
  "libcoop_sim.a"
  "libcoop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
