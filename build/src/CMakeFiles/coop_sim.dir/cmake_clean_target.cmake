file(REMOVE_RECURSE
  "libcoop_sim.a"
)
