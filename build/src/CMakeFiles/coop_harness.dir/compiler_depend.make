# Empty compiler generated dependencies file for coop_harness.
# This may be replaced when dependencies are built.
