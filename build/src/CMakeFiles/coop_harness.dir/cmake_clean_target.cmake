file(REMOVE_RECURSE
  "libcoop_harness.a"
)
