file(REMOVE_RECURSE
  "CMakeFiles/coop_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/coop_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/coop_harness.dir/harness/report.cpp.o"
  "CMakeFiles/coop_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/coop_harness.dir/harness/runner.cpp.o"
  "CMakeFiles/coop_harness.dir/harness/runner.cpp.o.d"
  "libcoop_harness.a"
  "libcoop_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
