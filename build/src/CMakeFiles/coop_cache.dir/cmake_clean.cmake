file(REMOVE_RECURSE
  "CMakeFiles/coop_cache.dir/cache/coop_cache.cpp.o"
  "CMakeFiles/coop_cache.dir/cache/coop_cache.cpp.o.d"
  "CMakeFiles/coop_cache.dir/cache/directory.cpp.o"
  "CMakeFiles/coop_cache.dir/cache/directory.cpp.o.d"
  "CMakeFiles/coop_cache.dir/cache/lru.cpp.o"
  "CMakeFiles/coop_cache.dir/cache/lru.cpp.o.d"
  "CMakeFiles/coop_cache.dir/cache/node_cache.cpp.o"
  "CMakeFiles/coop_cache.dir/cache/node_cache.cpp.o.d"
  "CMakeFiles/coop_cache.dir/cache/whole_file_cache.cpp.o"
  "CMakeFiles/coop_cache.dir/cache/whole_file_cache.cpp.o.d"
  "libcoop_cache.a"
  "libcoop_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
