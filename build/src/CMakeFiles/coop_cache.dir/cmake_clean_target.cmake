file(REMOVE_RECURSE
  "libcoop_cache.a"
)
