# Empty compiler generated dependencies file for coop_cache.
# This may be replaced when dependencies are built.
