
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/coop_cache.cpp" "src/CMakeFiles/coop_cache.dir/cache/coop_cache.cpp.o" "gcc" "src/CMakeFiles/coop_cache.dir/cache/coop_cache.cpp.o.d"
  "/root/repo/src/cache/directory.cpp" "src/CMakeFiles/coop_cache.dir/cache/directory.cpp.o" "gcc" "src/CMakeFiles/coop_cache.dir/cache/directory.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/CMakeFiles/coop_cache.dir/cache/lru.cpp.o" "gcc" "src/CMakeFiles/coop_cache.dir/cache/lru.cpp.o.d"
  "/root/repo/src/cache/node_cache.cpp" "src/CMakeFiles/coop_cache.dir/cache/node_cache.cpp.o" "gcc" "src/CMakeFiles/coop_cache.dir/cache/node_cache.cpp.o.d"
  "/root/repo/src/cache/whole_file_cache.cpp" "src/CMakeFiles/coop_cache.dir/cache/whole_file_cache.cpp.o" "gcc" "src/CMakeFiles/coop_cache.dir/cache/whole_file_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
