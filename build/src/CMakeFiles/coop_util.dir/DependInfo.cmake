
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/coop_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/coop_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/coop_util.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/coop_util.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/coop_util.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/coop_util.dir/util/format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
