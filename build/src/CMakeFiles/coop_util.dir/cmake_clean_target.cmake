file(REMOVE_RECURSE
  "libcoop_util.a"
)
