file(REMOVE_RECURSE
  "CMakeFiles/coop_util.dir/util/cli.cpp.o"
  "CMakeFiles/coop_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/coop_util.dir/util/csv.cpp.o"
  "CMakeFiles/coop_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/coop_util.dir/util/format.cpp.o"
  "CMakeFiles/coop_util.dir/util/format.cpp.o.d"
  "libcoop_util.a"
  "libcoop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
