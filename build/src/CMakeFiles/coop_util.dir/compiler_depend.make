# Empty compiler generated dependencies file for coop_util.
# This may be replaced when dependencies are built.
