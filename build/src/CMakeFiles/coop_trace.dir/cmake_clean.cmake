file(REMOVE_RECURSE
  "CMakeFiles/coop_trace.dir/trace/io.cpp.o"
  "CMakeFiles/coop_trace.dir/trace/io.cpp.o.d"
  "CMakeFiles/coop_trace.dir/trace/presets.cpp.o"
  "CMakeFiles/coop_trace.dir/trace/presets.cpp.o.d"
  "CMakeFiles/coop_trace.dir/trace/stats.cpp.o"
  "CMakeFiles/coop_trace.dir/trace/stats.cpp.o.d"
  "CMakeFiles/coop_trace.dir/trace/synthetic.cpp.o"
  "CMakeFiles/coop_trace.dir/trace/synthetic.cpp.o.d"
  "CMakeFiles/coop_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/coop_trace.dir/trace/trace.cpp.o.d"
  "libcoop_trace.a"
  "libcoop_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
