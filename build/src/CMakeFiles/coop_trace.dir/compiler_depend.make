# Empty compiler generated dependencies file for coop_trace.
# This may be replaced when dependencies are built.
