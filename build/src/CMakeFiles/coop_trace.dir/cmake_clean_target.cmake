file(REMOVE_RECURSE
  "libcoop_trace.a"
)
