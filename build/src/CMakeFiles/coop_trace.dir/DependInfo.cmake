
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/io.cpp" "src/CMakeFiles/coop_trace.dir/trace/io.cpp.o" "gcc" "src/CMakeFiles/coop_trace.dir/trace/io.cpp.o.d"
  "/root/repo/src/trace/presets.cpp" "src/CMakeFiles/coop_trace.dir/trace/presets.cpp.o" "gcc" "src/CMakeFiles/coop_trace.dir/trace/presets.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/CMakeFiles/coop_trace.dir/trace/stats.cpp.o" "gcc" "src/CMakeFiles/coop_trace.dir/trace/stats.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/coop_trace.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/coop_trace.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/coop_trace.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/coop_trace.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
