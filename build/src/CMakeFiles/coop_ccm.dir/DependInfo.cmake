
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccm/cluster.cpp" "src/CMakeFiles/coop_ccm.dir/ccm/cluster.cpp.o" "gcc" "src/CMakeFiles/coop_ccm.dir/ccm/cluster.cpp.o.d"
  "/root/repo/src/ccm/storage.cpp" "src/CMakeFiles/coop_ccm.dir/ccm/storage.cpp.o" "gcc" "src/CMakeFiles/coop_ccm.dir/ccm/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coop_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
