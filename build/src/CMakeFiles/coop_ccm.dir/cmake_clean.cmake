file(REMOVE_RECURSE
  "CMakeFiles/coop_ccm.dir/ccm/cluster.cpp.o"
  "CMakeFiles/coop_ccm.dir/ccm/cluster.cpp.o.d"
  "CMakeFiles/coop_ccm.dir/ccm/storage.cpp.o"
  "CMakeFiles/coop_ccm.dir/ccm/storage.cpp.o.d"
  "libcoop_ccm.a"
  "libcoop_ccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_ccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
