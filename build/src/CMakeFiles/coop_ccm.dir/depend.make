# Empty dependencies file for coop_ccm.
# This may be replaced when dependencies are built.
