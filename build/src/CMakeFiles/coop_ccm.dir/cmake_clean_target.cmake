file(REMOVE_RECURSE
  "libcoop_ccm.a"
)
