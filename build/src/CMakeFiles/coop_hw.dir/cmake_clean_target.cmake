file(REMOVE_RECURSE
  "libcoop_hw.a"
)
