file(REMOVE_RECURSE
  "CMakeFiles/coop_hw.dir/hw/disk.cpp.o"
  "CMakeFiles/coop_hw.dir/hw/disk.cpp.o.d"
  "CMakeFiles/coop_hw.dir/hw/network.cpp.o"
  "CMakeFiles/coop_hw.dir/hw/network.cpp.o.d"
  "CMakeFiles/coop_hw.dir/hw/node.cpp.o"
  "CMakeFiles/coop_hw.dir/hw/node.cpp.o.d"
  "CMakeFiles/coop_hw.dir/hw/params.cpp.o"
  "CMakeFiles/coop_hw.dir/hw/params.cpp.o.d"
  "libcoop_hw.a"
  "libcoop_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
