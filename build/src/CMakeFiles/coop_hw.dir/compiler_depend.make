# Empty compiler generated dependencies file for coop_hw.
# This may be replaced when dependencies are built.
