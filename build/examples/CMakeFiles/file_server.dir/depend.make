# Empty dependencies file for file_server.
# This may be replaced when dependencies are built.
