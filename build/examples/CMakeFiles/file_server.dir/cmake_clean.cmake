file(REMOVE_RECURSE
  "CMakeFiles/file_server.dir/file_server.cpp.o"
  "CMakeFiles/file_server.dir/file_server.cpp.o.d"
  "file_server"
  "file_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
