# Empty compiler generated dependencies file for web_cluster.
# This may be replaced when dependencies are built.
