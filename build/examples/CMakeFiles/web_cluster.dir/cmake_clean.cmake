file(REMOVE_RECURSE
  "CMakeFiles/web_cluster.dir/web_cluster.cpp.o"
  "CMakeFiles/web_cluster.dir/web_cluster.cpp.o.d"
  "web_cluster"
  "web_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
