file(REMOVE_RECURSE
  "CMakeFiles/test_ccm.dir/test_ccm.cpp.o"
  "CMakeFiles/test_ccm.dir/test_ccm.cpp.o.d"
  "test_ccm"
  "test_ccm.pdb"
  "test_ccm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
