# Empty dependencies file for test_ccm.
# This may be replaced when dependencies are built.
