# Empty compiler generated dependencies file for test_whole_file_cache.
# This may be replaced when dependencies are built.
