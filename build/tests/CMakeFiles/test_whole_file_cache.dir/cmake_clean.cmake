file(REMOVE_RECURSE
  "CMakeFiles/test_whole_file_cache.dir/test_whole_file_cache.cpp.o"
  "CMakeFiles/test_whole_file_cache.dir/test_whole_file_cache.cpp.o.d"
  "test_whole_file_cache"
  "test_whole_file_cache.pdb"
  "test_whole_file_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whole_file_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
