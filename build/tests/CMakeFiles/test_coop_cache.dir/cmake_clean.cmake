file(REMOVE_RECURSE
  "CMakeFiles/test_coop_cache.dir/test_coop_cache.cpp.o"
  "CMakeFiles/test_coop_cache.dir/test_coop_cache.cpp.o.d"
  "test_coop_cache"
  "test_coop_cache.pdb"
  "test_coop_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coop_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
