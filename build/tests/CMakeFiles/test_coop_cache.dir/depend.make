# Empty dependencies file for test_coop_cache.
# This may be replaced when dependencies are built.
