file(REMOVE_RECURSE
  "CMakeFiles/test_l2s.dir/test_l2s.cpp.o"
  "CMakeFiles/test_l2s.dir/test_l2s.cpp.o.d"
  "test_l2s"
  "test_l2s.pdb"
  "test_l2s[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l2s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
