# Empty compiler generated dependencies file for test_l2s.
# This may be replaced when dependencies are built.
