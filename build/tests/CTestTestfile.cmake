# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_coop_cache[1]_include.cmake")
include("/root/repo/build/tests/test_whole_file_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_ccm[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_l2s[1]_include.cmake")
