# Empty compiler generated dependencies file for ablation_wholefile.
# This may be replaced when dependencies are built.
