file(REMOVE_RECURSE
  "CMakeFiles/ablation_wholefile.dir/ablation_wholefile.cpp.o"
  "CMakeFiles/ablation_wholefile.dir/ablation_wholefile.cpp.o.d"
  "ablation_wholefile"
  "ablation_wholefile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wholefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
