# Empty dependencies file for fig6b_scalability.
# This may be replaced when dependencies are built.
