file(REMOVE_RECURSE
  "CMakeFiles/fig6b_scalability.dir/fig6b_scalability.cpp.o"
  "CMakeFiles/fig6b_scalability.dir/fig6b_scalability.cpp.o.d"
  "fig6b_scalability"
  "fig6b_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
