# Empty dependencies file for fig3_normalized.
# This may be replaced when dependencies are built.
