file(REMOVE_RECURSE
  "CMakeFiles/fig3_normalized.dir/fig3_normalized.cpp.o"
  "CMakeFiles/fig3_normalized.dir/fig3_normalized.cpp.o.d"
  "fig3_normalized"
  "fig3_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
