file(REMOVE_RECURSE
  "CMakeFiles/fig_params.dir/fig_params.cpp.o"
  "CMakeFiles/fig_params.dir/fig_params.cpp.o.d"
  "fig_params"
  "fig_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
