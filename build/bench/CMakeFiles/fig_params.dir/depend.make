# Empty dependencies file for fig_params.
# This may be replaced when dependencies are built.
