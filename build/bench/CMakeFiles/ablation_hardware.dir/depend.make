# Empty dependencies file for ablation_hardware.
# This may be replaced when dependencies are built.
