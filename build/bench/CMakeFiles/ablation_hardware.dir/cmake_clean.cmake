file(REMOVE_RECURSE
  "CMakeFiles/ablation_hardware.dir/ablation_hardware.cpp.o"
  "CMakeFiles/ablation_hardware.dir/ablation_hardware.cpp.o.d"
  "ablation_hardware"
  "ablation_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
