file(REMOVE_RECURSE
  "CMakeFiles/fig4_hitrates.dir/fig4_hitrates.cpp.o"
  "CMakeFiles/fig4_hitrates.dir/fig4_hitrates.cpp.o.d"
  "fig4_hitrates"
  "fig4_hitrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
