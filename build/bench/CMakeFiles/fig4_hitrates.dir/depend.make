# Empty dependencies file for fig4_hitrates.
# This may be replaced when dependencies are built.
