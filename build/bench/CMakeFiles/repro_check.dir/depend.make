# Empty dependencies file for repro_check.
# This may be replaced when dependencies are built.
