file(REMOVE_RECURSE
  "CMakeFiles/repro_check.dir/repro_check.cpp.o"
  "CMakeFiles/repro_check.dir/repro_check.cpp.o.d"
  "repro_check"
  "repro_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
