# Empty dependencies file for ablation_hotspot.
# This may be replaced when dependencies are built.
