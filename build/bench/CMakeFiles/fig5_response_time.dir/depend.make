# Empty dependencies file for fig5_response_time.
# This may be replaced when dependencies are built.
