file(REMOVE_RECURSE
  "CMakeFiles/fig2_throughput.dir/fig2_throughput.cpp.o"
  "CMakeFiles/fig2_throughput.dir/fig2_throughput.cpp.o.d"
  "fig2_throughput"
  "fig2_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
