# Empty dependencies file for fig2_throughput.
# This may be replaced when dependencies are built.
