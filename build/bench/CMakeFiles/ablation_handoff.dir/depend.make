# Empty dependencies file for ablation_handoff.
# This may be replaced when dependencies are built.
