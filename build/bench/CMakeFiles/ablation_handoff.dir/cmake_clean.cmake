file(REMOVE_RECURSE
  "CMakeFiles/ablation_handoff.dir/ablation_handoff.cpp.o"
  "CMakeFiles/ablation_handoff.dir/ablation_handoff.cpp.o.d"
  "ablation_handoff"
  "ablation_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
