# Empty compiler generated dependencies file for ablation_directory.
# This may be replaced when dependencies are built.
