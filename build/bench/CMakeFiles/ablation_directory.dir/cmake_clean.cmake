file(REMOVE_RECURSE
  "CMakeFiles/ablation_directory.dir/ablation_directory.cpp.o"
  "CMakeFiles/ablation_directory.dir/ablation_directory.cpp.o.d"
  "ablation_directory"
  "ablation_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
