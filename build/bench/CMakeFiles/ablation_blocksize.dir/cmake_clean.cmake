file(REMOVE_RECURSE
  "CMakeFiles/ablation_blocksize.dir/ablation_blocksize.cpp.o"
  "CMakeFiles/ablation_blocksize.dir/ablation_blocksize.cpp.o.d"
  "ablation_blocksize"
  "ablation_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
