# Empty compiler generated dependencies file for ablation_blocksize.
# This may be replaced when dependencies are built.
