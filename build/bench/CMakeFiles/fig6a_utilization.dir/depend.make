# Empty dependencies file for fig6a_utilization.
# This may be replaced when dependencies are built.
