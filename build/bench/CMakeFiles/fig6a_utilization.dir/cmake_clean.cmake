file(REMOVE_RECURSE
  "CMakeFiles/fig6a_utilization.dir/fig6a_utilization.cpp.o"
  "CMakeFiles/fig6a_utilization.dir/fig6a_utilization.cpp.o.d"
  "fig6a_utilization"
  "fig6a_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
